//! Ad-hoc breakdown of the serving/prepared hot path (not a recorded
//! bench): run with `cargo run --release -p bcq-bench --example
//! profile_serving`.
//!
//! Doubles as the allocation gate: the counting global allocator proves
//! the steady-state prepared path performs **zero** heap allocations per
//! request — with the metrics registry enabled (its record path is two
//! relaxed `fetch_add`s, no clocks, no boxes), and again on a server
//! opened with durability (the WAL writer rides the write path only;
//! prepared reads must not touch it). CI runs this in release mode; the
//! asserts at the bottom fail the build on any regression.

use bcq_core::access::AccessSchema;
use bcq_core::prelude::*;
use bcq_exec::{eval_dq_with, ParamEnv};
use bcq_service::{DurabilityConfig, LogStorage, MemLog, Server, ServerConfig, SyncPolicy};
use bcq_storage::Database;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates to the system allocator.
unsafe impl std::alloc::GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: std::alloc::Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(l.size() as u64, Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(p, l) }
    }
}

#[global_allocator]
static A: Counting = Counting;

fn count_allocs(label: &str, iters: u32, mut f: impl FnMut(usize)) -> f64 {
    for i in 0..64 {
        f(i);
    }
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    for i in 0..iters {
        f(i as usize);
    }
    let a = ALLOCS.load(Ordering::Relaxed) - a0;
    let b = BYTES.load(Ordering::Relaxed) - b0;
    let per_op = a as f64 / iters as f64;
    println!(
        "{label:40} {per_op:8.1} allocs/op {:8.0} bytes/op",
        b as f64 / iters as f64
    );
    per_op
}

fn social_catalog() -> Arc<Catalog> {
    Catalog::from_names(&[
        ("in_album", &["photo_id", "album_id"][..]),
        ("friends", &["user_id", "friend_id"]),
        ("tagging", &["photo_id", "tagger_id", "taggee_id"]),
    ])
    .unwrap()
}

fn social_access(cat: &Arc<Catalog>) -> AccessSchema {
    let mut a = AccessSchema::new(Arc::clone(cat));
    a.add("in_album", &["album_id"], &["photo_id"], 16).unwrap();
    a.add("friends", &["user_id"], &["friend_id"], 8).unwrap();
    a.add("tagging", &["photo_id", "taggee_id"], &["tagger_id"], 8)
        .unwrap();
    a
}

fn social_db(cat: &Arc<Catalog>, a: &AccessSchema, users: i64) -> Database {
    let mut db = Database::new(Arc::clone(cat));
    for u in 0..users {
        for k in 0..8 {
            let f = (u * 31 + k * 7 + 1) % users;
            db.insert(
                "friends",
                &[Value::str(format!("u{u}")), Value::str(format!("f{f}"))],
            )
            .unwrap();
        }
    }
    for p in 0..users / 2 {
        db.insert(
            "in_album",
            &[
                Value::str(format!("p{p}")),
                Value::str(format!("a{}", p % (users / 20))),
            ],
        )
        .unwrap();
        db.insert(
            "tagging",
            &[
                Value::str(format!("p{p}")),
                Value::str(format!("f{}", (p * 31 + 1) % users)),
                Value::str(format!("u{}", p % users)),
            ],
        )
        .unwrap();
    }
    db.build_indexes(a);
    db
}

fn template(cat: &Arc<Catalog>) -> SpcQuery {
    SpcQuery::builder(Arc::clone(cat), "social")
        .atom("in_album", "ia")
        .atom("friends", "f")
        .atom("tagging", "t")
        .eq_param(("ia", "album_id"), "aid")
        .eq_param(("f", "user_id"), "uid")
        .eq(("ia", "photo_id"), ("t", "photo_id"))
        .eq(("t", "tagger_id"), ("f", "friend_id"))
        .eq_param(("t", "taggee_id"), "uid")
        .project(("ia", "photo_id"))
        .build()
        .unwrap()
}

fn time(label: &str, iters: u32, mut f: impl FnMut(usize)) -> f64 {
    // warmup
    for i in 0..iters / 4 {
        f(i as usize);
    }
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let t = Instant::now();
        for i in 0..iters {
            f(i as usize);
        }
        let ns = t.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    println!("{label:40} {best:10.1} ns/op");
    best
}

fn main() {
    let users = 4000i64;
    let cat = social_catalog();
    let access = social_access(&cat);
    let db = social_db(&cat, &access, users);
    let server = Arc::new(Server::new(db, access.clone(), ServerConfig::default()));
    let tpl = template(&cat);
    let binds: Vec<BTreeMap<String, Value>> = (0..32)
        .map(|i| {
            let i = i as i64;
            let mut b = BTreeMap::new();
            b.insert("aid".to_string(), Value::str(format!("a{}", i * 7 + 1)));
            b.insert(
                "uid".to_string(),
                Value::str(format!("u{}", (i * 13 + 5) % users)),
            );
            b
        })
        .collect();

    let handle = server.prepare(&tpl).unwrap();
    let mut sink = 0usize;

    time("server.execute (full request)", 20000, |i| {
        let resp = server.execute(&handle.query, &binds[i % 32]).unwrap();
        sink += resp.rows().map_or(0, |r| r.len());
    });

    time("snapshot() only", 20000, |_| {
        sink += Arc::as_ptr(&server.snapshot()) as usize & 1;
    });

    let snap = server.snapshot();
    time("ParamEnv::encode only", 20000, |i| {
        let env = ParamEnv::encode(snap.symbols(), &binds[i % 32]);
        sink += env.get("aid").is_some() as usize;
    });

    let plan = handle.query.plan().unwrap();
    time("eval_dq_with (snapshot held, +encode)", 20000, |i| {
        let env = ParamEnv::encode(snap.symbols(), &binds[i % 32]);
        sink += eval_dq_with(&snap, plan, &access, &env)
            .unwrap()
            .result
            .len();
    });

    let envs: Vec<ParamEnv> = (0..32)
        .map(|i| ParamEnv::encode(snap.symbols(), &binds[i]))
        .collect();
    time("eval_dq_with (pre-encoded env)", 20000, |i| {
        sink += eval_dq_with(&snap, plan, &access, &envs[i % 32])
            .unwrap()
            .result
            .len();
    });

    assert!(
        server.metrics().is_enabled(),
        "the alloc gate must measure the metrics-on path"
    );
    let execute_allocs = count_allocs("allocs: server.execute (metrics on)", 4096, |i| {
        let resp = server.execute(&handle.query, &binds[i % 32]).unwrap();
        sink += resp.rows().map_or(0, |r| r.len());
    });
    let eval_allocs = count_allocs("allocs: eval_dq_with (pre-encoded)", 4096, |i| {
        sink += eval_dq_with(&snap, plan, &access, &envs[i % 32])
            .unwrap()
            .result
            .len();
    });
    assert_eq!(
        execute_allocs, 0.0,
        "prepared serving must stay allocation-free with always-on metrics"
    );
    assert_eq!(eval_allocs, 0.0, "scratch-reusing executor regressed");

    // The same gate against a durable server: the WAL writer hangs off
    // the write path only, so attaching one must not cost prepared reads
    // a single allocation. (Smaller dataset — the gate is shape-, not
    // size-, sensitive; every loaded row below is WAL-logged.)
    let dusers = 1000i64;
    let log: Arc<dyn LogStorage> = Arc::new(MemLog::new());
    let (durable, _report, _views) = Server::open(
        log,
        social_access(&cat),
        ServerConfig::default(),
        DurabilityConfig {
            policy: SyncPolicy::EveryOps(64),
            keep_snapshots: 2,
        },
        &[],
    )
    .unwrap();
    durable.bulk_update(|db| {
        for u in 0..dusers {
            for k in 0..8 {
                let f = (u * 31 + k * 7 + 1) % dusers;
                db.insert(
                    "friends",
                    &[Value::str(format!("u{u}")), Value::str(format!("f{f}"))],
                )
                .unwrap();
            }
        }
        for p in 0..dusers / 2 {
            db.insert(
                "in_album",
                &[
                    Value::str(format!("p{p}")),
                    Value::str(format!("a{}", p % (dusers / 20))),
                ],
            )
            .unwrap();
            db.insert(
                "tagging",
                &[
                    Value::str(format!("p{p}")),
                    Value::str(format!("f{}", (p * 31 + 1) % dusers)),
                    Value::str(format!("u{}", p % dusers)),
                ],
            )
            .unwrap();
        }
    });
    assert!(durable.wal_stats().unwrap().records > 0, "bulk load logged");
    let dhandle = durable.prepare(&tpl).unwrap();
    let dbinds: Vec<BTreeMap<String, Value>> = (0..32)
        .map(|i| {
            let i = i as i64;
            let mut b = BTreeMap::new();
            b.insert("aid".to_string(), Value::str(format!("a{}", i * 7 + 1)));
            b.insert(
                "uid".to_string(),
                Value::str(format!("u{}", (i * 13 + 5) % dusers)),
            );
            b
        })
        .collect();
    let durable_allocs = count_allocs("allocs: server.execute (WAL attached)", 4096, |i| {
        let resp = durable.execute(&dhandle.query, &dbinds[i % 32]).unwrap();
        sink += resp.rows().map_or(0, |r| r.len());
    });
    assert_eq!(
        durable_allocs, 0.0,
        "prepared serving must stay allocation-free with the WAL attached"
    );

    std::hint::black_box(sink);
}
