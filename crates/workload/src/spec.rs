//! Dataset bundles: catalog + access schema + query workload + generator.

use crate::source::RowSource;
use bcq_core::prelude::{AccessSchema, Catalog, SpcQuery};
use bcq_storage::Database;
use std::sync::Arc;

/// One workload query with its expected analysis outcome (asserted by
/// tests; the paper reports 35 of 45 queries effectively bounded).
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// The SPC query.
    pub query: SpcQuery,
    /// Whether the query is effectively bounded under the dataset's full
    /// access schema.
    pub expect_effectively_bounded: bool,
}

impl WorkloadQuery {
    /// Bundles a query with its expected verdict.
    pub fn new(query: SpcQuery, expect_effectively_bounded: bool) -> Self {
        WorkloadQuery {
            query,
            expect_effectively_bounded,
        }
    }
}

/// A complete experimental dataset: schema, access schema (in `‖A‖`-sweep
/// order), the 15-query workload, and a scalable generator.
pub struct Dataset {
    /// Display name ("TFACC" / "MOT" / "TPCH").
    pub name: &'static str,
    /// The relational schema.
    pub catalog: Arc<Catalog>,
    /// The full access schema; `access.prefix(k)` gives the `‖A‖ = k` sweep
    /// points.
    pub access: AccessSchema,
    /// The 15 workload queries.
    pub queries: Vec<WorkloadQuery>,
    /// Deterministic generator: `(scale, seed) → D` with `D |= access`.
    pub generate: fn(f64, u64) -> Database,
    /// The streaming row sources behind [`Dataset::generate`]: one
    /// random-access [`RowSource`] per relation, in load order. Callers
    /// that want to meter or partition ingest (benches, bulk-load
    /// harnesses) stream these through [`crate::source::load`] themselves;
    /// `generate` is exactly that loop.
    pub sources: fn(f64, u64) -> Vec<Box<dyn RowSource>>,
    /// Scale used when `|D|` is not being swept.
    pub default_scale: f64,
    /// The `|D|`-sweep ladder (Figure 5(a)/(e)/(i)).
    pub scale_ladder: &'static [f64],
}

impl Dataset {
    /// Generates the dataset at `scale` with the default seed and builds
    /// all indices of the full access schema.
    pub fn build(&self, scale: f64) -> Database {
        let mut db = (self.generate)(scale, 0xBC0);
        db.build_indexes(&self.access);
        db
    }

    /// The effectively bounded subset of the workload (what Exp-1 runs).
    pub fn effectively_bounded_queries(&self) -> impl Iterator<Item = &WorkloadQuery> {
        self.queries.iter().filter(|w| w.expect_effectively_bounded)
    }
}
