#![warn(missing_docs)]
//! # bcq-telemetry — zero-overhead observability for the serving tier
//!
//! The engine proves boundedness *per request* (the storage `Meter`'s
//! `|D_Q|` accounting in `RequestStats`); this crate aggregates it
//! *fleet-wide* without perturbing the hot path the numbers describe:
//!
//! * [`MetricsRegistry`] — always-on, lock-free counters and latency
//!   histograms. The serving path records one request with a single
//!   enabled check, one histogram `fetch_add` and one sharded-counter
//!   `fetch_add`: no lock, no allocation, a handful of nanoseconds.
//! * [`Histogram`] — HDR-style log-linear buckets (unit resolution below
//!   2⁵, then 32 linear sub-buckets per power-of-two octave: ≤ 3.1 %
//!   relative error), fixed layout so snapshots merge exactly.
//! * [`Phase`] spans — request tracing (admit → cache-lookup → compile →
//!   bind → execute → respond) over a thread-local span stack, enabled
//!   per server ([`MetricsRegistry::set_tracing`]) or per thread
//!   ([`span::trace_thread`]); one relaxed load and a branch when off.
//! * [`Probe`] / [`OpProfile`] — per-operator profiling. The columnar
//!   interpreter is generic over [`Probe`]; the [`NoProbe`]
//!   monomorphization (`ENABLED = false`) compiles every probe site away,
//!   while a [`Profiler`] times each operator step with row counts.
//! * [`MetricsSnapshot`] — an owned, mergeable snapshot with hand-rolled
//!   JSON and Prometheus-style text expositions (serde-free).
//!
//! ```
//! use bcq_telemetry::{LaneKind, MetricsRegistry};
//!
//! let reg = MetricsRegistry::new();
//! reg.record_request(LaneKind::Bounded, 870, 4); // 870 ns, |D_Q| = 4
//! let snap = reg.snapshot();
//! assert_eq!(snap.lane(LaneKind::Bounded).latency.count(), 1);
//! assert!(snap.to_json().contains("\"bounded\""));
//! ```

pub mod export;
pub mod hist;
pub mod metrics;
pub mod profile;
pub mod span;

pub use export::{
    AdmissionSnapshot, GaugeSnapshot, IngestSnapshot, LaneSnapshot, MetricsSnapshot, PhaseSnapshot,
    PlanCacheSnapshot, WalSnapshot, WriteSnapshot,
};
pub use hist::{HistSnapshot, Histogram};
pub use metrics::{Counter, LaneKind, MetricsRegistry, NUM_LANES};
pub use profile::{NoProbe, OpProfile, Probe, Profiler, StepKind, StepProfile};
pub use span::{trace_thread, Phase, SpanGuard, ThreadTraceGuard, NUM_PHASES};
