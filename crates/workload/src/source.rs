//! Streaming, scale-factor-parameterized row sources.
//!
//! A [`RowSource`] describes one relation's generated contents as a pure
//! function of the row index: `total_rows()` rows, any chunk of which can
//! be materialized with [`RowSource::fill_chunk`] in **constant memory**
//! and in **any order**. Random access is what makes the sources
//! partitionable — two loaders can stream disjoint row ranges of the same
//! source concurrently and produce exactly the rows a single sequential
//! pass would (the generators' [`crate::gen::row_rng`] keys every row's
//! randomness by `(seed, table, row)`, and their structural columns are
//! index arithmetic like [`crate::gen::spread`]).
//!
//! [`load`] streams a source into a database through the bulk-ingest fast
//! path ([`bcq_storage::BulkLoader`]): column-major chunks, batch symbol
//! interning, one WAL record per chunk, one exact capacity reservation up
//! front. Memory stays flat at `O(chunk)` beyond the table being built,
//! no matter how many rows stream through.

use bcq_core::prelude::{RelId, Value};
use bcq_storage::{Database, IngestStats};

/// Rows per chunk used by [`load`]: big enough to amortize per-chunk
/// costs (batch encode, WAL framing), small enough that chunk buffers
/// stay cache-friendly and memory overhead is negligible.
pub const DEFAULT_CHUNK_ROWS: usize = 8_192;

/// A relation's generated contents as a random-access stream of rows;
/// see the [module docs](self).
pub trait RowSource: Send + Sync {
    /// The relation this source fills.
    fn rel(&self) -> RelId;

    /// Number of columns per row.
    fn arity(&self) -> usize;

    /// Total number of rows the source yields.
    fn total_rows(&self) -> u64;

    /// Materializes rows `start .. start + rows` **column at a time**:
    /// appends each row's `c`-th value onto `cols[c]` (the caller clears
    /// the buffers between chunks). Must be a pure function of the row
    /// range — same range, same rows — so ranges can be filled in any
    /// order or in parallel.
    fn fill_chunk(&self, start: u64, rows: usize, cols: &mut [Vec<Value>]);
}

/// A [`RowSource`] backed by a per-row closure `f(i, &mut row)` — the
/// porting target for the dataset generators: each table becomes one
/// closure writing row `i`'s values.
pub struct FnRowSource<F> {
    rel: RelId,
    arity: usize,
    total: u64,
    f: F,
}

impl<F: Fn(u64, &mut Vec<Value>) + Send + Sync> RowSource for FnRowSource<F> {
    fn rel(&self) -> RelId {
        self.rel
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn total_rows(&self) -> u64 {
        self.total
    }

    fn fill_chunk(&self, start: u64, rows: usize, cols: &mut [Vec<Value>]) {
        let mut row = Vec::with_capacity(self.arity);
        for r in 0..rows {
            row.clear();
            (self.f)(start + r as u64, &mut row);
            debug_assert_eq!(row.len(), self.arity, "row function wrote wrong arity");
            for (c, v) in row.drain(..).enumerate() {
                cols[c].push(v);
            }
        }
    }
}

/// Boxes a per-row closure as a [`RowSource`] for relation `rel` with
/// `total` rows of `arity` columns.
pub fn rows<F>(rel: RelId, arity: usize, total: u64, f: F) -> Box<dyn RowSource>
where
    F: Fn(u64, &mut Vec<Value>) + Send + Sync + 'static,
{
    Box::new(FnRowSource {
        rel,
        arity,
        total,
        f,
    })
}

/// Streams the whole source into `db` through the bulk-ingest fast path
/// in [`DEFAULT_CHUNK_ROWS`]-row chunks. Returns the load's counters.
pub fn load(db: &mut Database, src: &dyn RowSource) -> IngestStats {
    load_range(db, src, 0, src.total_rows(), DEFAULT_CHUNK_ROWS)
}

/// Streams rows `start .. end` of the source into `db` in `chunk_rows`-row
/// chunks — the row-range partitioned form of [`load`] (each call is one
/// bulk-load bracket; disjoint ranges compose to the full source).
pub fn load_range(
    db: &mut Database,
    src: &dyn RowSource,
    start: u64,
    end: u64,
    chunk_rows: usize,
) -> IngestStats {
    assert!(chunk_rows > 0, "chunk size must be positive");
    assert!(
        start <= end && end <= src.total_rows(),
        "row range out of bounds"
    );
    let mut loader = db.bulk_loader(src.rel());
    loader.reserve_rows((end - start) as usize);
    let mut cols: Vec<Vec<Value>> = (0..src.arity())
        .map(|_| Vec::with_capacity(chunk_rows))
        .collect();
    let mut at = start;
    while at < end {
        let n = chunk_rows.min((end - at) as usize);
        for c in cols.iter_mut() {
            c.clear();
        }
        src.fill_chunk(at, n, &mut cols);
        loader.push_chunk_columns(&cols);
        at += n as u64;
    }
    loader.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcq_core::prelude::Catalog;
    use std::sync::Arc;

    fn catalog() -> Arc<Catalog> {
        Catalog::from_names(&[("r", &["a", "b"])]).unwrap()
    }

    fn src() -> Box<dyn RowSource> {
        rows(RelId(0), 2, 1000, |i, row| {
            row.push(Value::int(i as i64));
            row.push(Value::str(format!("s{}", i % 3)));
        })
    }

    #[test]
    fn load_streams_every_row_in_order() {
        let mut db = Database::new(catalog());
        let stats = load(&mut db, src().as_ref());
        assert_eq!(stats.rows, 1000);
        assert_eq!(db.table(RelId(0)).len(), 1000);
        let rows: Vec<_> = db.value_rows(RelId(0)).collect();
        assert_eq!(rows[0], vec![Value::int(0), Value::str("s0")]);
        assert_eq!(rows[999], vec![Value::int(999), Value::str("s0")]);
    }

    #[test]
    fn partitioned_ranges_compose_to_the_sequential_load() {
        let s = src();
        let mut whole = Database::new(catalog());
        load(&mut whole, s.as_ref());
        // The same source split into three uneven ranges with a tiny odd
        // chunk size that never divides the range evenly.
        let mut parts = Database::new(catalog());
        for (a, b) in [(0, 137), (137, 640), (640, 1000)] {
            load_range(&mut parts, s.as_ref(), a, b, 7);
        }
        let x: Vec<_> = whole.value_rows(RelId(0)).collect();
        let y: Vec<_> = parts.value_rows(RelId(0)).collect();
        assert_eq!(x, y);
    }

    #[test]
    fn chunks_are_pure_functions_of_the_range() {
        let s = src();
        let mut a: Vec<Vec<Value>> = vec![Vec::new(), Vec::new()];
        let mut b: Vec<Vec<Value>> = vec![Vec::new(), Vec::new()];
        s.fill_chunk(500, 10, &mut a);
        // Filling the same range after other ranges yields the same rows.
        s.fill_chunk(0, 3, &mut b);
        b.iter_mut().for_each(Vec::clear);
        s.fill_chunk(500, 10, &mut b);
        assert_eq!(a, b);
    }
}
