//! A small SQL-style surface syntax for SPC queries.
//!
//! SPC is exactly the `SELECT DISTINCT`–`FROM`–`WHERE(=, AND)` fragment of
//! SQL, so a familiar syntax costs little and helps adoption:
//!
//! ```text
//! SELECT ia.photo_id
//! FROM in_album ia, friends f, tagging t
//! WHERE ia.album_id = 'a0'
//!   AND f.user_id = ?uid
//!   AND ia.photo_id = t.photo_id
//!   AND t.tagger_id = f.friend_id
//!   AND t.taggee_id = ?uid
//! ```
//!
//! * `SELECT *` is not supported (SPC projections are explicit); Boolean
//!   queries use `SELECT 1` or an empty select list via `EXISTS` syntax:
//!   `SELECT EXISTS FROM … WHERE …`.
//! * Constants: single-quoted strings or integer literals.
//! * Parameters: `?name` placeholders (Example 1(2)-style templates).
//! * Only equality predicates combined with `AND` — anything else is
//!   outside SPC and rejected with a position-carrying error.

use crate::error::{CoreError, Result};
use crate::query::{QueryBuilder, SpcQuery};
use crate::schema::Catalog;
use crate::value::Value;
use std::sync::Arc;

/// Parses the SQL-style SPC fragment into an [`SpcQuery`] named `name`.
pub fn parse_spc(catalog: Arc<Catalog>, name: &str, sql: &str) -> Result<SpcQuery> {
    let tokens = tokenize(sql)?;
    Parser {
        tokens,
        pos: 0,
        catalog,
    }
    .parse(name)
}

/// Renders a query back to the surface syntax, such that
/// `parse_spc(cat, name, &render_sql(q)?) == q`.
///
/// Fails for queries whose constants cannot be written as literals
/// (`NULL`, or strings containing a quote).
pub fn render_sql(q: &SpcQuery) -> Result<String> {
    use crate::query::Predicate;
    let cat = q.catalog();
    let fmt_value = |v: &Value| -> Result<String> {
        match v {
            Value::Int(i) => Ok(i.to_string()),
            Value::Str(s) if !s.contains('\'') => Ok(format!("'{s}'")),
            Value::Str(_) => Err(CoreError::Invalid(
                "cannot render a string containing a quote".into(),
            )),
            Value::Null => Err(CoreError::Invalid("cannot render NULL".into())),
        }
    };
    let mut out = String::from("SELECT ");
    if q.is_boolean() {
        out.push_str("EXISTS");
    } else {
        let cols: Vec<String> = q.projection().iter().map(|z| q.attr_name(*z)).collect();
        out.push_str(&cols.join(", "));
    }
    out.push_str(" FROM ");
    let atoms: Vec<String> = q
        .atoms()
        .iter()
        .map(|a| format!("{} {}", cat.relation(a.relation).name(), a.alias))
        .collect();
    out.push_str(&atoms.join(", "));
    if !q.predicates().is_empty() {
        out.push_str(" WHERE ");
        let preds: Vec<String> = q
            .predicates()
            .iter()
            .map(|p| -> Result<String> {
                Ok(match p {
                    Predicate::Eq(a, b) => format!("{} = {}", q.attr_name(*a), q.attr_name(*b)),
                    Predicate::Const(a, v) => {
                        format!("{} = {}", q.attr_name(*a), fmt_value(v)?)
                    }
                    Predicate::Param(a, name) => format!("{} = ?{name}", q.attr_name(*a)),
                })
            })
            .collect::<Result<_>>()?;
        out.push_str(&preds.join(" AND "));
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Param(String),
    Dot,
    Comma,
    Eq,
    Star,
    One,
}

fn tokenize(sql: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = sql.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '.' => {
                chars.next();
                out.push(Tok::Dot);
            }
            ',' => {
                chars.next();
                out.push(Tok::Comma);
            }
            '=' => {
                chars.next();
                out.push(Tok::Eq);
            }
            '*' => {
                chars.next();
                out.push(Tok::Star);
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some((_, '\'')) => break,
                        Some((_, ch)) => s.push(ch),
                        None => {
                            return Err(CoreError::Invalid(format!(
                                "unterminated string starting at byte {i}"
                            )))
                        }
                    }
                }
                out.push(Tok::Str(s));
            }
            '?' => {
                chars.next();
                let mut s = String::new();
                while let Some(&(_, ch)) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        s.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if s.is_empty() {
                    return Err(CoreError::Invalid(format!(
                        "`?` at byte {i} must be followed by a parameter name"
                    )));
                }
                out.push(Tok::Param(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&(_, ch)) = chars.peek() {
                    if ch.is_ascii_digit() {
                        s.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: i64 = s
                    .parse()
                    .map_err(|_| CoreError::Invalid(format!("bad integer `{s}` at byte {i}")))?;
                out.push(if v == 1 { Tok::One } else { Tok::Int(v) });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&(_, ch)) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        s.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(s));
            }
            other => {
                return Err(CoreError::Invalid(format!(
                    "unexpected character `{other}` at byte {i} (SPC supports only =, AND)"
                )))
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
    catalog: Arc<Catalog>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(CoreError::Invalid(format!(
                "expected `{kw}`, found {other:?}"
            ))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(CoreError::Invalid(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// `alias.attr`
    fn qualified(&mut self) -> Result<(String, String)> {
        let alias = self.ident()?;
        match self.next() {
            Some(Tok::Dot) => {}
            other => {
                return Err(CoreError::Invalid(format!(
                    "expected `.` after alias `{alias}`, found {other:?} \
                     (all attribute references must be alias-qualified)"
                )))
            }
        }
        let attr = self.ident()?;
        Ok((alias, attr))
    }

    fn parse(mut self, name: &str) -> Result<SpcQuery> {
        self.expect_kw("select")?;

        // Select list: EXISTS | 1 | qualified (, qualified)*
        #[derive(Debug)]
        enum Sel {
            Boolean,
            Cols(Vec<(String, String)>),
        }
        let sel = match self.peek() {
            Some(Tok::One) => {
                self.next();
                Sel::Boolean
            }
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("exists") => {
                self.next();
                Sel::Boolean
            }
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("distinct") => {
                // SPC results are sets anyway; accept and ignore.
                self.next();
                let mut cols = vec![self.qualified()?];
                while matches!(self.peek(), Some(Tok::Comma)) {
                    self.next();
                    cols.push(self.qualified()?);
                }
                Sel::Cols(cols)
            }
            Some(Tok::Star) => {
                return Err(CoreError::Invalid(
                    "SELECT * is not supported: SPC projections are explicit".into(),
                ))
            }
            _ => {
                let mut cols = vec![self.qualified()?];
                while matches!(self.peek(), Some(Tok::Comma)) {
                    self.next();
                    cols.push(self.qualified()?);
                }
                Sel::Cols(cols)
            }
        };

        self.expect_kw("from")?;
        let mut atoms: Vec<(String, String)> = Vec::new(); // (relation, alias)
        loop {
            let rel = self.ident()?;
            // Optional alias (defaults to the relation name).
            let alias = match self.peek() {
                Some(Tok::Ident(s))
                    if !s.eq_ignore_ascii_case("where") && !s.eq_ignore_ascii_case("and") =>
                {
                    self.ident()?
                }
                _ => rel.clone(),
            };
            atoms.push((rel, alias));
            match self.peek() {
                Some(Tok::Comma) => {
                    self.next();
                }
                _ => break,
            }
        }

        // WHERE clause (optional).
        #[derive(Debug)]
        enum Rhs {
            Attr(String, String),
            Const(Value),
            Param(String),
        }
        let mut predicates: Vec<((String, String), Rhs)> = Vec::new();
        if matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("where")) {
            self.next();
            loop {
                let lhs = self.qualified()?;
                match self.next() {
                    Some(Tok::Eq) => {}
                    other => {
                        return Err(CoreError::Invalid(format!(
                            "expected `=` (SPC supports only equality), found {other:?}"
                        )))
                    }
                }
                let rhs = match self.next() {
                    Some(Tok::Ident(alias)) => {
                        match self.next() {
                            Some(Tok::Dot) => {}
                            other => {
                                return Err(CoreError::Invalid(format!(
                                    "expected `.` after `{alias}`, found {other:?}"
                                )))
                            }
                        }
                        let attr = self.ident()?;
                        Rhs::Attr(alias, attr)
                    }
                    Some(Tok::Int(v)) => Rhs::Const(Value::Int(v)),
                    Some(Tok::One) => Rhs::Const(Value::Int(1)),
                    Some(Tok::Str(s)) => Rhs::Const(Value::str(s)),
                    Some(Tok::Param(p)) => Rhs::Param(p),
                    other => {
                        return Err(CoreError::Invalid(format!(
                            "expected attribute, constant or ?param, found {other:?}"
                        )))
                    }
                };
                predicates.push((lhs, rhs));
                match self.peek() {
                    Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("and") => {
                        self.next();
                    }
                    None => break,
                    other => {
                        return Err(CoreError::Invalid(format!(
                            "expected `AND` or end of query, found {other:?}"
                        )))
                    }
                }
            }
        } else if self.peek().is_some() {
            return Err(CoreError::Invalid(format!(
                "expected `WHERE` or end of query, found {:?}",
                self.peek()
            )));
        }

        // Assemble through the builder (which does all name resolution).
        let mut b: QueryBuilder = SpcQuery::builder(self.catalog, name);
        for (rel, alias) in &atoms {
            b = b.atom(rel, alias);
        }
        for (lhs, rhs) in &predicates {
            let l = (lhs.0.as_str(), lhs.1.as_str());
            b = match rhs {
                Rhs::Attr(a, at) => b.eq(l, (a.as_str(), at.as_str())),
                Rhs::Const(v) => b.eq_const(l, v.clone()),
                Rhs::Param(p) => b.eq_param(l, p),
            };
        }
        if let Sel::Cols(cols) = &sel {
            for (a, at) in cols {
                b = b.project((a.as_str(), at.as_str()));
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ebcheck::ebcheck;
    use crate::query::fixtures::{a0, photos_catalog, q0};

    #[test]
    fn parses_q0_equivalently() {
        let sql = "
            SELECT ia.photo_id
            FROM in_album ia, friends f, tagging t
            WHERE ia.album_id = 'a0'
              AND f.user_id = 'u0'
              AND ia.photo_id = t.photo_id
              AND t.tagger_id = f.friend_id
              AND t.taggee_id = 'u0'";
        let q = parse_spc(photos_catalog(), "Q0", sql).unwrap();
        assert_eq!(q, q0());
        assert!(ebcheck(&q, &a0()).effectively_bounded);
    }

    #[test]
    fn parses_parameters() {
        let sql = "SELECT ia.photo_id FROM in_album ia WHERE ia.album_id = ?aid";
        let q = parse_spc(photos_catalog(), "tpl", sql).unwrap();
        assert_eq!(q.placeholder_names(), vec!["aid"]);
    }

    #[test]
    fn parses_boolean_queries() {
        for sel in ["SELECT 1", "SELECT EXISTS"] {
            let sql = format!("{sel} FROM friends f WHERE f.user_id = 'u0'");
            let q = parse_spc(photos_catalog(), "b", &sql).unwrap();
            assert!(q.is_boolean());
            assert_eq!(q.num_sel(), 1);
        }
    }

    #[test]
    fn default_alias_is_relation_name() {
        let sql = "SELECT friends.friend_id FROM friends WHERE friends.user_id = 7";
        let q = parse_spc(photos_catalog(), "d", sql).unwrap();
        assert_eq!(q.atoms()[0].alias, "friends");
        assert_eq!(q.num_sel(), 1);
    }

    #[test]
    fn distinct_is_accepted_and_ignored() {
        let sql = "SELECT DISTINCT f.friend_id FROM friends f";
        let q = parse_spc(photos_catalog(), "d", sql).unwrap();
        assert_eq!(q.projection().len(), 1);
    }

    #[test]
    fn self_joins_via_aliases() {
        let sql = "SELECT f1.user_id, f2.friend_id
                   FROM friends f1, friends f2
                   WHERE f1.friend_id = f2.user_id";
        let q = parse_spc(photos_catalog(), "sj", sql).unwrap();
        assert_eq!(q.num_atoms(), 2);
        assert_eq!(q.num_prod(), 1);
    }

    #[test]
    fn integer_and_negative_constants() {
        let sql = "SELECT f.friend_id FROM friends f WHERE f.user_id = -42";
        let q = parse_spc(photos_catalog(), "neg", sql).unwrap();
        assert_eq!(q.num_sel(), 1);
        // The literal 1 also works as a constant on the right-hand side.
        let sql = "SELECT f.friend_id FROM friends f WHERE f.user_id = 1";
        let q = parse_spc(photos_catalog(), "one", sql).unwrap();
        assert_eq!(q.num_sel(), 1);
    }

    #[test]
    fn rejects_non_spc_syntax() {
        let cat = photos_catalog();
        for (sql, why) in [
            ("SELECT * FROM friends f", "star"),
            (
                "SELECT f.friend_id FROM friends f WHERE f.user_id < 3",
                "non-equality",
            ),
            (
                "SELECT f.friend_id FROM friends f WHERE f.user_id = 'x' OR f.user_id = 'y'",
                "OR",
            ),
            ("SELECT friend_id FROM friends f", "unqualified attribute"),
            ("FROM friends f", "missing select"),
            (
                "SELECT f.friend_id FROM friends f WHERE f.user_id = 'unterminated",
                "string",
            ),
        ] {
            assert!(parse_spc(cat.clone(), "bad", sql).is_err(), "{why}: {sql}");
        }
    }

    #[test]
    fn rejects_unknown_names_via_builder() {
        let cat = photos_catalog();
        assert!(parse_spc(cat.clone(), "bad", "SELECT g.x FROM ghosts g").is_err());
        assert!(parse_spc(cat, "bad", "SELECT f.nope FROM friends f").is_err());
    }

    #[test]
    fn whitespace_and_case_insensitive_keywords() {
        let sql = "select\n\tf.friend_id\nfrom friends f\nwhere f.user_id='u0'";
        let q = parse_spc(photos_catalog(), "ws", sql).unwrap();
        assert_eq!(q.num_sel(), 1);
    }

    #[test]
    fn render_roundtrips_q0() {
        let q = q0();
        let sql = render_sql(&q).unwrap();
        let back = parse_spc(photos_catalog(), q.name(), &sql).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn render_roundtrips_booleans_and_params() {
        let cat = photos_catalog();
        let q = SpcQuery::builder(cat.clone(), "b")
            .atom("friends", "f")
            .eq_param(("f", "user_id"), "u")
            .eq_const(("f", "friend_id"), 7)
            .build()
            .unwrap();
        let sql = render_sql(&q).unwrap();
        assert!(sql.contains("SELECT EXISTS"), "{sql}");
        assert!(sql.contains("?u"), "{sql}");
        let back = parse_spc(cat, "b", &sql).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn render_rejects_unprintable_constants() {
        let cat = photos_catalog();
        let q = SpcQuery::builder(cat.clone(), "bad")
            .atom("friends", "f")
            .eq_const(("f", "user_id"), "it's")
            .build()
            .unwrap();
        assert!(render_sql(&q).is_err());
        let q = SpcQuery::builder(cat, "null")
            .atom("friends", "f")
            .eq_const(("f", "user_id"), Value::Null)
            .build()
            .unwrap();
        assert!(render_sql(&q).is_err());
    }

    #[test]
    fn render_roundtrips_the_whole_workload_shape() {
        // Structural check on a self-join with multiple projections.
        let cat = photos_catalog();
        let q = SpcQuery::builder(cat.clone(), "sj")
            .atom("friends", "f1")
            .atom("friends", "f2")
            .eq(("f1", "friend_id"), ("f2", "user_id"))
            .eq_const(("f1", "user_id"), 3)
            .project(("f1", "user_id"))
            .project(("f2", "friend_id"))
            .build()
            .unwrap();
        let back = parse_spc(cat, "sj", &render_sql(&q).unwrap()).unwrap();
        assert_eq!(back, q);
    }
}
