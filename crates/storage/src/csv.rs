//! CSV import/export for tables and databases.
//!
//! The synthetic workloads stand in for the paper's datasets, but the real
//! ones are public (UK Road Safety Data, NaPTAN, anonymised MOT results):
//! this module lets a user load the actual CSVs and run the same analyses
//! and experiments. Hand-rolled RFC-4180-subset parser — quoted fields,
//! embedded commas/quotes/newlines — to stay within the approved
//! dependency set.
//!
//! Typing: a field parses as [`Value::Int`] when it is a valid `i64`
//! (the workloads are integer-coded), as [`Value::Null`] when empty, and
//! as [`Value::Str`] otherwise.

use crate::database::Database;
use bcq_core::error::{CoreError, Result};
use bcq_core::prelude::{RelId, Value};
use std::io::{BufRead, Write};

/// Parses one CSV record from `line_iter` (may consume multiple physical
/// lines when quoted fields embed newlines). Returns `None` at EOF.
fn read_record(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Result<Option<Vec<String>>> {
    let Some(first) = lines.next() else {
        return Ok(None);
    };
    let mut buf = first.map_err(|e| CoreError::Invalid(format!("io error: {e}")))?;
    loop {
        match split_record(&buf) {
            Some(fields) => return Ok(Some(fields)),
            None => {
                // Unbalanced quotes: the record continues on the next line.
                let Some(next) = lines.next() else {
                    return Err(CoreError::Invalid("unterminated quoted field".into()));
                };
                buf.push('\n');
                buf.push_str(&next.map_err(|e| CoreError::Invalid(format!("io error: {e}")))?);
            }
        }
    }
}

/// Splits a complete record into fields; `None` if quotes are unbalanced.
fn split_record(record: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = record.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut field)),
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return None;
    }
    fields.push(field);
    Some(fields)
}

fn parse_value(field: &str) -> Value {
    if field.is_empty() {
        Value::Null
    } else if let Ok(i) = field.parse::<i64>() {
        Value::Int(i)
    } else {
        Value::str(field)
    }
}

/// Loads CSV rows into `relation` of `db`.
///
/// With `has_header = true` the first record must name the relation's
/// attributes (any order); columns are mapped by name and extra columns
/// are ignored. Without a header, records must match the relation's arity
/// positionally. Returns the number of rows loaded. Indices are dropped;
/// rebuild with [`Database::build_indexes`].
pub fn load_csv(
    db: &mut Database,
    relation: &str,
    reader: impl BufRead,
    has_header: bool,
) -> Result<usize> {
    let rel = db.catalog().require_rel(relation)?;
    let schema = db.catalog().relation(rel).clone();
    let mut lines = reader.lines();

    // Column mapping: position in the CSV -> column in the relation.
    let mapping: Option<Vec<Option<usize>>> = if has_header {
        let Some(header) = read_record(&mut lines)? else {
            return Ok(0);
        };
        let map: Vec<Option<usize>> = header
            .iter()
            .map(|name| schema.attr_index(name.trim()))
            .collect();
        for (col, attr) in schema.attributes().iter().enumerate() {
            if !map.contains(&Some(col)) {
                return Err(CoreError::Invalid(format!(
                    "CSV header is missing attribute `{attr}` of `{relation}`"
                )));
            }
        }
        Some(map)
    } else {
        None
    };

    let mut count = 0usize;
    let mut row = vec![Value::Null; schema.arity()];
    while let Some(fields) = read_record(&mut lines)? {
        if fields.len() == 1 && fields[0].is_empty() {
            continue; // blank line
        }
        match &mapping {
            Some(map) => {
                if fields.len() != map.len() {
                    return Err(CoreError::Invalid(format!(
                        "record {} has {} fields, header has {}",
                        count + 1,
                        fields.len(),
                        map.len()
                    )));
                }
                row.fill(Value::Null);
                for (f, m) in fields.iter().zip(map) {
                    if let Some(col) = m {
                        row[*col] = parse_value(f);
                    }
                }
            }
            None => {
                if fields.len() != schema.arity() {
                    return Err(CoreError::Invalid(format!(
                        "record {} has {} fields, relation `{relation}` has arity {}",
                        count + 1,
                        fields.len(),
                        schema.arity()
                    )));
                }
                for (col, f) in fields.iter().enumerate() {
                    row[col] = parse_value(f);
                }
            }
        }
        db.insert(relation, &row)?;
        count += 1;
    }
    Ok(count)
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => escape(s),
    }
}

/// Writes `relation` of `db` as CSV (with a header row).
pub fn dump_csv(db: &Database, relation: &str, mut writer: impl Write) -> Result<usize> {
    let rel: RelId = db.catalog().require_rel(relation)?;
    let schema = db.catalog().relation(rel);
    let io_err = |e: std::io::Error| CoreError::Invalid(format!("io error: {e}"));
    writeln!(writer, "{}", schema.attributes().join(",")).map_err(io_err)?;
    let mut count = 0usize;
    for row in db.value_rows(rel) {
        let line: Vec<String> = row.iter().map(render_value).collect();
        writeln!(writer, "{}", line.join(",")).map_err(io_err)?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcq_core::prelude::Catalog;

    fn db() -> Database {
        Database::new(Catalog::from_names(&[("friends", &["user_id", "friend_id"])]).unwrap())
    }

    #[test]
    fn positional_load() {
        let mut d = db();
        let csv = "1,2\n1,3\n7,hello\n";
        let n = load_csv(&mut d, "friends", csv.as_bytes(), false).unwrap();
        assert_eq!(n, 3);
        let rows: Vec<_> = d.value_rows(RelId(0)).collect();
        assert_eq!(rows[0], vec![Value::int(1), Value::int(2)]);
        assert_eq!(rows[2], vec![Value::int(7), Value::str("hello")]);
    }

    #[test]
    fn header_load_reorders_and_ignores_extras() {
        let mut d = db();
        let csv = "friend_id,notes,user_id\n2,whatever,1\n";
        let n = load_csv(&mut d, "friends", csv.as_bytes(), true).unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            d.value_rows(RelId(0)).next().unwrap(),
            vec![Value::int(1), Value::int(2)]
        );
    }

    #[test]
    fn missing_header_column_rejected() {
        let mut d = db();
        let csv = "friend_id\n2\n";
        assert!(load_csv(&mut d, "friends", csv.as_bytes(), true).is_err());
    }

    #[test]
    fn quoted_fields_and_embedded_structures() {
        let mut d = db();
        let csv = "\"a,b\",\"say \"\"hi\"\"\"\n\"line1\nline2\",9\n";
        let n = load_csv(&mut d, "friends", csv.as_bytes(), false).unwrap();
        assert_eq!(n, 2);
        let rows: Vec<_> = d.value_rows(RelId(0)).collect();
        assert_eq!(rows[0], vec![Value::str("a,b"), Value::str("say \"hi\"")]);
        assert_eq!(rows[1], vec![Value::str("line1\nline2"), Value::int(9)]);
    }

    #[test]
    fn empty_fields_become_null() {
        let mut d = db();
        let n = load_csv(&mut d, "friends", ",5\n".as_bytes(), false).unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            d.value_rows(RelId(0)).next().unwrap(),
            vec![Value::Null, Value::int(5)]
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut d = db();
        assert!(load_csv(&mut d, "friends", "1,2,3\n".as_bytes(), false).is_err());
        assert!(load_csv(&mut d, "friends", "1\n".as_bytes(), false).is_err());
        assert!(load_csv(&mut d, "ghost", "1,2\n".as_bytes(), false).is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        let mut d = db();
        assert!(load_csv(&mut d, "friends", "\"oops,2\n".as_bytes(), false).is_err());
    }

    #[test]
    fn dump_roundtrips() {
        let mut d = db();
        d.insert("friends", &[Value::int(1), Value::str("a,b")])
            .unwrap();
        d.insert("friends", &[Value::Null, Value::str("q\"q")])
            .unwrap();
        let mut out = Vec::new();
        let n = dump_csv(&d, "friends", &mut out).unwrap();
        assert_eq!(n, 2);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("user_id,friend_id\n"));

        let mut d2 = db();
        let m = load_csv(&mut d2, "friends", text.as_bytes(), true).unwrap();
        assert_eq!(m, 2);
        let lhs: Vec<_> = d.value_rows(RelId(0)).collect();
        let rhs: Vec<_> = d2.value_rows(RelId(0)).collect();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn blank_lines_skipped() {
        let mut d = db();
        let n = load_csv(&mut d, "friends", "1,2\n\n3,4\n".as_bytes(), false).unwrap();
        assert_eq!(n, 2);
    }
}
