//! Deterministic generation helpers.
//!
//! Access constraints are enforced **by construction**: children are
//! assigned to parents with [`spread`], a multiplicative permutation that
//! distributes `m` children over `n` parents with per-parent counts of
//! exactly `⌊m/n⌋` or `⌈m/n⌉` — so a declared bound `N ≥ ⌈m/n⌉` can never
//! be violated, at any scale. Unconstrained attributes use a seeded
//! [`rand::rngs::SmallRng`] for realistic variety with full determinism.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Multiplier for the spread permutation (a prime larger than any table
/// cardinality we generate, so it is coprime with every modulus).
const SPREAD_PRIME: u64 = 2_654_435_761;

/// A second prime for independent assignments of the same child id.
const SPREAD_PRIME_2: u64 = 4_294_967_311;

/// Assigns child `i` to one of `n` parents. For `i` ranging over `0..m`,
/// each parent receives `⌊m/n⌋` or `⌈m/n⌉` children.
#[inline]
pub fn spread(i: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    i.wrapping_mul(SPREAD_PRIME) % n
}

/// A second, independent balanced assignment (different permutation).
#[inline]
pub fn spread2(i: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    i.wrapping_mul(SPREAD_PRIME_2) % n
}

/// Scales a base cardinality, clamped to at least `min`.
pub fn scaled(base: u64, scale: f64, min: u64) -> u64 {
    ((base as f64 * scale) as u64).max(min)
}

/// A deterministic RNG for a (dataset seed, table) pair.
pub fn table_rng(seed: u64, table_tag: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ table_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Uniform categorical value in `0..n`.
#[inline]
pub fn cat(rng: &mut SmallRng, n: u64) -> i64 {
    rng.gen_range(0..n) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn spread_is_balanced() {
        let (m, n) = (10_000u64, 37u64);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for i in 0..m {
            *counts.entry(spread(i, n)).or_default() += 1;
        }
        assert_eq!(counts.len() as u64, n);
        let lo = m / n;
        let hi = lo + 1;
        for (_, c) in counts {
            assert!(c == lo || c == hi, "unbalanced count {c}");
        }
    }

    #[test]
    fn spread_variants_are_independent() {
        // The two permutations should disagree on most inputs.
        let n = 101;
        let disagreements = (0..1000).filter(|&i| spread(i, n) != spread2(i, n)).count();
        assert!(disagreements > 900);
    }

    #[test]
    fn scaled_clamps() {
        assert_eq!(scaled(1000, 0.5, 1), 500);
        assert_eq!(scaled(1000, 0.0001, 25), 25);
        assert_eq!(scaled(1000, 2.0, 1), 2000);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = table_rng(42, 7);
        let mut b = table_rng(42, 7);
        for _ in 0..100 {
            assert_eq!(cat(&mut a, 1000), cat(&mut b, 1000));
        }
        // Different tags diverge.
        let mut c = table_rng(42, 8);
        let same = (0..100)
            .filter(|_| cat(&mut a, 1000) == cat(&mut c, 1000))
            .count();
        assert!(same < 20);
    }
}
