//! Access-schema advisor: "what constraints/indices would make my queries
//! bounded?" — the paper's future-work item (2), built on `advise` plus
//! data-driven bound calibration (`discover_bound`).
//!
//! Uses the SQL-style parser for the queries, runs the advisor against an
//! *empty* access schema, calibrates the proposed bounds against a
//! generated TPCH instance, and verifies the queries become effectively
//! bounded.
//!
//! Run with: `cargo run --release --example schema_advisor`

use bounded_cq::core::advisor::{advise, Proposal};
use bounded_cq::prelude::*;
use bounded_cq::workload::tpch;

fn main() -> Result<()> {
    let catalog = tpch::catalog();

    // An analyst writes plain queries — no access schema in sight.
    let sql = [
        (
            "orders_of_customer",
            "SELECT o.o_orderkey
             FROM orders o
             WHERE o.o_custkey = 42 AND o.o_orderstatus = 1",
        ),
        (
            "parts_shipped",
            "SELECT l.l_partkey
             FROM orders o, lineitem l
             WHERE o.o_custkey = 42 AND l.l_orderkey = o.o_orderkey
               AND l.l_shipmode = 3",
        ),
        (
            "nation_of_supplier",
            "SELECT n.n_name
             FROM supplier s, nation n
             WHERE s.s_suppkey = 17 AND n.n_nationkey = s.s_nationkey",
        ),
    ];
    let queries: Vec<SpcQuery> = sql
        .iter()
        .map(|(name, text)| parse_spc(catalog.clone(), name, text))
        .collect::<Result<_>>()?;

    // None of them is effectively bounded without access constraints.
    let empty = AccessSchema::new(catalog.clone());
    for q in &queries {
        assert!(!ebcheck(q, &empty).effectively_bounded);
    }

    // Ask the advisor.
    let refs: Vec<&SpcQuery> = queries.iter().collect();
    let advice = advise(&refs, &empty);
    println!("--- proposed access constraints ---");
    for p in &advice.proposals {
        println!(
            "  {}: ({}) -> ({})    [{}]",
            p.relation,
            p.x.join(", "),
            p.y.join(", "),
            p.reason
        );
    }
    assert!(advice.unresolved.is_empty());

    // Calibrate the bounds N against actual data (the paper "examined the
    // size of active domains and dependencies" the same way).
    let db = tpch::generate(4.0, 7);
    println!(
        "\n--- calibrated against SF-4 data ({} tuples) ---",
        db.total_tuples()
    );
    let mut calibrated = AccessSchema::new(catalog.clone());
    for p in &advice.proposals {
        let x_refs: Vec<&str> = p.x.iter().map(String::as_str).collect();
        let y_refs: Vec<&str> = p.y.iter().map(String::as_str).collect();
        let observed =
            discover_bound(&db, &p.relation, &x_refs, &y_refs).unwrap_or(Proposal::UNKNOWN_BOUND);
        // Declare double the observed bound as safety margin.
        let n = observed * 2;
        println!(
            "  {}: ({}) -> ({}, {n})   [observed {observed}]",
            p.relation,
            p.x.join(", "),
            p.y.join(", ")
        );
        calibrated.push(p.to_constraint(&calibrated, n)?);
    }

    // The queries are now effectively bounded — plan and run them.
    let mut db = db;
    db.build_indexes(&calibrated);
    println!("\n--- bounded execution under the advised schema ---");
    for q in &queries {
        let plan = qplan(q, &calibrated)?;
        let out = eval_dq(&db, &plan, &calibrated)?;
        println!(
            "  {:<20} Σ M_i = {:>6}, |DQ| = {:>4}, {} row(s), {:?}",
            q.name(),
            plan.cost_bound(),
            out.dq_tuples(),
            out.result.len(),
            out.elapsed
        );
        let check = baseline(
            &db,
            q,
            &calibrated,
            BaselineOptions {
                mode: BaselineMode::FullScan,
                work_budget: None,
            },
        )?;
        assert_eq!(check.result().unwrap(), &out.result);
    }
    println!("\nfull scans agree with the bounded plans on every query.");
    Ok(())
}
