//! Vector-clock snapshots: a full dump of the database keyed by the
//! per-relation epoch vector, written as a single CRC-framed blob.
//!
//! A snapshot stores the global commit counter, the last WAL sequence
//! number it covers, the symbol-table dump (strings and wide ints in id
//! order, so restored cells decode identically), and per shard its epoch,
//! flattened rows, and the `(x, y)` specs of its indices. Restoring is
//! [`bcq_storage::Database::restore`] plus replay of every WAL record
//! with a sequence number beyond [`DecodedSnapshot::last_seq`].
//!
//! [`checkpoint`] writes snapshots with a **sync-before, sync-after**
//! discipline: the log is flushed first (a snapshot must never claim
//! records the log doesn't durably hold), then the blob is written and
//! flushed, then older snapshots beyond the retention count are pruned.
//! Retention of ≥ 2 is what makes a torn snapshot recoverable: if the
//! newest blob is partial (crash mid-checkpoint), recovery falls back to
//! the previous one and replays further back in the same log.

use crate::frame::{append_frame, decode_frames};
use crate::record::Reader;
use crate::storage::LogStorage;
use bcq_core::prelude::{Catalog, Cell, SymbolTable, Value};
use bcq_storage::{Database, ShardState};
use std::io;
use std::sync::Arc;

/// Blob-name prefix for snapshots; the suffix is the zero-padded covered
/// sequence number, so lexicographic order is chronological order.
pub const SNAP_PREFIX: &str = "snap-";

/// Magic bytes leading every snapshot blob.
const MAGIC: &[u8; 8] = b"BCQSNAP1";

/// The blob name of a snapshot covering WAL records up to `last_seq`.
pub fn snapshot_name(last_seq: u64) -> String {
    format!("{SNAP_PREFIX}{last_seq:020}")
}

/// A parsed snapshot, ready to restore.
#[derive(Debug)]
pub struct DecodedSnapshot {
    /// The global commit counter at snapshot time.
    pub commit: u64,
    /// Last WAL sequence number reflected in the snapshot; replay starts
    /// at `last_seq + 1`.
    pub last_seq: u64,
    /// Full symbol-table dump.
    pub symbols: SymbolTable,
    /// Per-relation state, in relation order.
    pub shards: Vec<ShardState>,
}

/// Serializes `db` (committed through `last_seq`) into blob bytes.
pub fn encode_snapshot(db: &Database, last_seq: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&db.epoch().to_le_bytes());
    payload.extend_from_slice(&last_seq.to_le_bytes());

    let symbols = db.symbols();
    payload.extend_from_slice(&(symbols.len() as u32).to_le_bytes());
    for s in symbols.strings() {
        payload.extend_from_slice(&(s.len() as u32).to_le_bytes());
        payload.extend_from_slice(s.as_bytes());
    }
    payload.extend_from_slice(&(symbols.num_wide_ints() as u32).to_le_bytes());
    for &w in symbols.wide_ints() {
        payload.extend_from_slice(&w.to_le_bytes());
    }

    payload.extend_from_slice(&(db.num_relations() as u32).to_le_bytes());
    for rel in 0..db.num_relations() {
        let shard = db.shard(bcq_core::prelude::RelId(rel));
        payload.extend_from_slice(&shard.epoch().to_le_bytes());
        let table = shard.table();
        payload.extend_from_slice(&(table.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(table.arity() as u32).to_le_bytes());
        for row in table.rows() {
            for cell in row {
                payload.extend_from_slice(&cell.raw().to_le_bytes());
            }
        }
        let specs: Vec<_> = shard.index_specs().collect();
        payload.extend_from_slice(&(specs.len() as u32).to_le_bytes());
        for (x, y) in specs {
            for cols in [x, y] {
                payload.extend_from_slice(&(cols.len() as u32).to_le_bytes());
                for &c in cols {
                    payload.extend_from_slice(&(c as u32).to_le_bytes());
                }
            }
        }
    }

    let mut out = Vec::with_capacity(payload.len() + MAGIC.len() + 8);
    out.extend_from_slice(MAGIC);
    append_frame(&mut out, &payload);
    out
}

/// Parses snapshot blob bytes. Any damage — missing magic, torn tail,
/// CRC mismatch, malformed payload — is an `Err`, which recovery treats
/// as "this snapshot never happened" and falls back to an older one.
pub fn decode_snapshot(bytes: &[u8]) -> Result<DecodedSnapshot, String> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err("snapshot magic missing".into());
    }
    let framed = decode_frames(&bytes[MAGIC.len()..]).map_err(|e| e.to_string())?;
    let (_, end, payload) = *framed
        .frames
        .first()
        .ok_or_else(|| "snapshot payload torn".to_string())?;
    if framed.frames.len() != 1 || end != bytes.len() - MAGIC.len() {
        return Err("snapshot has trailing bytes".into());
    }

    let mut r = Reader::new(payload);
    let commit = r.u64()?;
    let last_seq = r.u64()?;

    let mut symbols = SymbolTable::new();
    let nstrings = r.u32()? as usize;
    for _ in 0..nstrings {
        let len = r.u32()? as usize;
        let s = std::str::from_utf8(r.take(len)?).map_err(|e| format!("symbol not UTF-8: {e}"))?;
        symbols.intern(s);
    }
    let nwide = r.u32()? as usize;
    for _ in 0..nwide {
        let w = r.i64()?;
        // Wide ints re-enter the pool through the encode path; pool order
        // equals dump order, so indices match the snapshotted cells.
        symbols.encode(&Value::Int(w));
    }
    if symbols.num_wide_ints() != nwide {
        return Err("wide-int dump contained a small int".into());
    }

    let nshards = r.u32()? as usize;
    let mut shards = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        let epoch = r.u64()?;
        let nrows = r.u64()? as usize;
        let arity = r.u32()? as usize;
        let mut cells = Vec::with_capacity(nrows * arity);
        for _ in 0..nrows * arity {
            let raw = r.u64()?;
            cells.push(Cell::from_raw(raw).ok_or_else(|| format!("invalid cell word {raw:#x}"))?);
        }
        let nindexes = r.u32()? as usize;
        let mut indexes = Vec::with_capacity(nindexes);
        for _ in 0..nindexes {
            let mut xy = [Vec::new(), Vec::new()];
            for cols in &mut xy {
                let n = r.u32()? as usize;
                for _ in 0..n {
                    cols.push(r.u32()? as usize);
                }
            }
            let [x, y] = xy;
            indexes.push((x, y));
        }
        shards.push(ShardState {
            epoch,
            cells,
            indexes,
        });
    }
    r.done()?;
    Ok(DecodedSnapshot {
        commit,
        last_seq,
        symbols,
        shards,
    })
}

/// Restores a database from a decoded snapshot against `catalog`.
pub fn restore_snapshot(catalog: Arc<Catalog>, snap: DecodedSnapshot) -> Result<Database, String> {
    Database::restore(catalog, snap.symbols, snap.shards, snap.commit)
        .map_err(|e| format!("snapshot restore: {e}"))
}

/// Writes a checkpoint of `db` covering WAL records through `last_seq`,
/// pruning snapshots beyond the newest `keep` (≥ 1; 2 is the default that
/// keeps torn-snapshot fallback working). Returns the blob name.
///
/// The caller must hold the database's write serialization while reading
/// `(db, last_seq)` so the pair is atomic; see `Server::checkpoint` in
/// `bcq-service`.
pub fn checkpoint(
    storage: &dyn LogStorage,
    db: &Database,
    last_seq: u64,
    keep: usize,
) -> io::Result<String> {
    // The log first: a snapshot must never cover records that are not
    // durably in the log (fallback replay depends on them).
    storage.sync()?;
    let name = snapshot_name(last_seq);
    storage.write_blob(&name, &encode_snapshot(db, last_seq))?;
    storage.sync()?;
    let mut snaps: Vec<String> = storage
        .list_blobs()?
        .into_iter()
        .filter(|n| n.starts_with(SNAP_PREFIX))
        .collect();
    snaps.sort();
    let keep = keep.max(1);
    if snaps.len() > keep {
        for old in &snaps[..snaps.len() - keep] {
            storage.delete_blob(old)?;
        }
    }
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemLog;
    use bcq_core::prelude::*;

    fn sample_db() -> (Arc<Catalog>, Database) {
        let cat = Catalog::from_names(&[("r", &["a", "b"]), ("s", &["c"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r", &["a"], &["b"], 10).unwrap();
        let mut db = Database::new(cat.clone());
        db.insert("r", &[Value::str("x"), Value::int(1)]).unwrap();
        db.insert("r", &[Value::str("y"), Value::int(i64::MAX)])
            .unwrap();
        db.insert("s", &[Value::int(7)]).unwrap();
        db.build_indexes(&a);
        (cat, db)
    }

    #[test]
    fn snapshot_roundtrips_rows_epochs_symbols_and_indexes() {
        let (cat, db) = sample_db();
        let bytes = encode_snapshot(&db, 42);
        let snap = decode_snapshot(&bytes).unwrap();
        assert_eq!(snap.commit, db.epoch());
        assert_eq!(snap.last_seq, 42);
        let restored = restore_snapshot(cat, snap).unwrap();
        assert_eq!(restored.epoch(), db.epoch());
        for rel in 0..db.num_relations() {
            let rel = RelId(rel);
            assert_eq!(restored.epoch_of(rel), db.epoch_of(rel));
            assert_eq!(
                restored.value_rows(rel).collect::<Vec<_>>(),
                db.value_rows(rel).collect::<Vec<_>>()
            );
            assert_eq!(
                restored.shard(rel).num_indexes(),
                db.shard(rel).num_indexes()
            );
        }
        // Cells decode against the restored symbol table bit-for-bit.
        assert_eq!(
            restored.symbols().try_encode(&Value::str("y")),
            db.symbols().try_encode(&Value::str("y"))
        );
        assert_eq!(
            restored.symbols().try_encode(&Value::int(i64::MAX)),
            db.symbols().try_encode(&Value::int(i64::MAX))
        );
    }

    #[test]
    fn every_truncation_of_a_snapshot_fails_to_decode() {
        let (_, db) = sample_db();
        let bytes = encode_snapshot(&db, 7);
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        assert!(decode_snapshot(&bytes).is_ok());
        // Corruption anywhere fails too (CRC or magic).
        for flip in [0, MAGIC.len() + 3, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x10;
            assert!(decode_snapshot(&bad).is_err(), "flip at {flip} decoded");
        }
    }

    #[test]
    fn checkpoint_prunes_to_retention_keeping_newest() {
        let (_, db) = sample_db();
        let log = MemLog::new();
        for seq in [10, 20, 30] {
            checkpoint(&log, &db, seq, 2).unwrap();
        }
        let mut blobs = log.list_blobs().unwrap();
        blobs.sort();
        assert_eq!(blobs, vec![snapshot_name(20), snapshot_name(30)]);
    }
}
