//! Where log bytes live: the [`LogStorage`] trait, its in-memory
//! fault-injecting implementation ([`MemLog`]), and the real-directory
//! implementation ([`DirLog`]).
//!
//! The trait is deliberately tiny — named append-only byte streams plus
//! whole blobs (snapshots) — so the entire recovery path can be driven
//! against [`MemLog`]'s simulated crashes in unit tests and proptests:
//! no temp dirs, no real fsync, and byte-exact control over what survives.
//!
//! ## The `MemLog` crash model
//!
//! `MemLog` keeps a single **journal** of every write (stream appends and
//! blob writes) in arrival order, with a durability watermark advanced by
//! [`LogStorage::sync`]. [`MemLog::crash`] keeps everything below the
//! watermark plus an arbitrary byte-prefix of the unsynced suffix — so a
//! simulated crash can land *mid-record* (torn tail) or *mid-snapshot*
//! (partial blob), exactly the states a kernel panic leaves on a real
//! disk. [`MemLog::set_fsync_lies`] makes `sync` claim success without
//! advancing the watermark, modelling drives that acknowledge flushes
//! from volatile cache.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Byte-level storage for WAL streams and snapshot blobs.
///
/// Streams are append-only named byte sequences; blobs are whole named
/// byte arrays (snapshots), written atomically. All methods take `&self`:
/// implementations are internally synchronized, and the single-writer
/// discipline lives above (the WAL writer serializes appends).
pub trait LogStorage: Send + Sync + std::fmt::Debug {
    /// Appends bytes to the named stream (created on first append).
    fn append(&self, stream: &str, bytes: &[u8]) -> io::Result<()>;
    /// Makes everything written so far durable (streams and blobs).
    fn sync(&self) -> io::Result<()>;
    /// The full contents of a stream (empty if it was never written).
    fn read(&self, stream: &str) -> io::Result<Vec<u8>>;
    /// Every stream that has been written, in unspecified order.
    fn streams(&self) -> io::Result<Vec<String>>;
    /// Discards stream bytes beyond `len` (recovery's tail cleanup).
    fn truncate(&self, stream: &str, len: u64) -> io::Result<()>;
    /// Writes a whole blob under `name`, replacing any previous one.
    fn write_blob(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Reads a blob back; `None` if absent.
    fn read_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>>;
    /// Every blob name present, in unspecified order.
    fn list_blobs(&self) -> io::Result<Vec<String>>;
    /// Removes a blob (no-op if absent).
    fn delete_blob(&self, name: &str) -> io::Result<()>;
}

/// One write in the `MemLog` journal.
#[derive(Debug, Clone)]
enum Entry {
    Append { stream: String, bytes: Vec<u8> },
    Blob { name: String, bytes: Vec<u8> },
}

impl Entry {
    fn len(&self) -> usize {
        match self {
            Entry::Append { bytes, .. } | Entry::Blob { bytes, .. } => bytes.len(),
        }
    }

    fn truncated(&self, keep: usize) -> Entry {
        let mut e = self.clone();
        match &mut e {
            Entry::Append { bytes, .. } | Entry::Blob { bytes, .. } => bytes.truncate(keep),
        }
        e
    }
}

#[derive(Debug, Default)]
struct MemInner {
    /// Every write in arrival order; the crash model's source of truth.
    journal: Vec<Entry>,
    /// Journal entries at or below this index are durable.
    durable_entries: usize,
    /// Blob deletions tombstone by name (a deleted blob stops resolving
    /// even if its write entry is still journaled).
    deleted_blobs: Vec<String>,
    fsync_lies: bool,
    syncs: u64,
}

impl MemInner {
    /// Materializes the current byte content of one stream.
    fn stream_bytes(&self, stream: &str) -> Vec<u8> {
        let mut out = Vec::new();
        for e in &self.journal {
            if let Entry::Append { stream: s, bytes } = e {
                if s == stream {
                    out.extend_from_slice(bytes);
                }
            }
        }
        out
    }

    /// The latest (possibly partial) write of one blob, minus tombstones.
    fn blob_bytes(&self, name: &str) -> Option<Vec<u8>> {
        if self.deleted_blobs.iter().any(|n| n == name) {
            return None;
        }
        let mut found = None;
        for e in &self.journal {
            if let Entry::Blob { name: n, bytes } = e {
                if n == name {
                    found = Some(bytes.clone());
                }
            }
        }
        found
    }
}

/// In-memory [`LogStorage`] with simulated crashes and fsync lies. See
/// the [module docs](self) for the model.
#[derive(Debug, Default)]
pub struct MemLog {
    inner: Mutex<MemInner>,
}

impl MemLog {
    /// An empty volatile log.
    pub fn new() -> Self {
        MemLog::default()
    }

    /// Total bytes written but not yet durable — the crash window.
    /// [`MemLog::crash`] accepts any `keep` in `0..=unsynced_bytes()`.
    pub fn unsynced_bytes(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.journal[inner.durable_entries..]
            .iter()
            .map(Entry::len)
            .sum()
    }

    /// Number of `sync` calls observed (including lied-about ones).
    pub fn syncs(&self) -> u64 {
        self.inner.lock().unwrap().syncs
    }

    /// Simulates a crash: everything durable survives, plus the first
    /// `keep_unsynced` bytes of the unsynced suffix in write order — which
    /// can cut an append **mid-record** or a snapshot blob **mid-blob**.
    /// Everything written after the cut is gone, as after a power loss.
    pub fn crash(&self, keep_unsynced: usize) {
        let mut inner = self.inner.lock().unwrap();
        let mut journal: Vec<Entry> = inner.journal[..inner.durable_entries].to_vec();
        let mut budget = keep_unsynced;
        for e in &inner.journal[inner.durable_entries..] {
            if budget == 0 {
                break;
            }
            if e.len() <= budget {
                budget -= e.len();
                journal.push(e.clone());
            } else {
                journal.push(e.truncated(budget));
                budget = 0;
            }
        }
        inner.durable_entries = journal.len();
        inner.journal = journal;
    }

    /// Makes `sync` report success without making anything durable — the
    /// lying-drive fault. Crashes then lose writes the caller was told
    /// were safe.
    pub fn set_fsync_lies(&self, lies: bool) {
        self.inner.lock().unwrap().fsync_lies = lies;
    }

    /// Flips one byte at `offset` of `stream` — in-place corruption for
    /// testing that recovery fails loudly instead of replaying garbage.
    pub fn corrupt_byte(&self, stream: &str, offset: usize) {
        let mut inner = self.inner.lock().unwrap();
        let mut pos = 0;
        for e in inner.journal.iter_mut() {
            if let Entry::Append { stream: s, bytes } = e {
                if s == stream {
                    if offset < pos + bytes.len() {
                        bytes[offset - pos] ^= 0x40;
                        return;
                    }
                    pos += bytes.len();
                }
            }
        }
        panic!("corrupt_byte: offset {offset} beyond stream `{stream}` ({pos} bytes)");
    }

    /// Truncates the stored bytes of blob `name` to `len` — direct
    /// partial-snapshot injection (equivalent to a crash landing inside
    /// the blob write).
    pub fn truncate_blob(&self, name: &str, len: usize) {
        let mut inner = self.inner.lock().unwrap();
        for e in inner.journal.iter_mut().rev() {
            if let Entry::Blob { name: n, bytes } = e {
                if n == name {
                    bytes.truncate(len);
                    return;
                }
            }
        }
        panic!("truncate_blob: no blob `{name}`");
    }
}

impl LogStorage for MemLog {
    fn append(&self, stream: &str, bytes: &[u8]) -> io::Result<()> {
        self.inner.lock().unwrap().journal.push(Entry::Append {
            stream: stream.to_string(),
            bytes: bytes.to_vec(),
        });
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.syncs += 1;
        if !inner.fsync_lies {
            inner.durable_entries = inner.journal.len();
        }
        Ok(())
    }

    fn read(&self, stream: &str) -> io::Result<Vec<u8>> {
        Ok(self.inner.lock().unwrap().stream_bytes(stream))
    }

    fn streams(&self) -> io::Result<Vec<String>> {
        let inner = self.inner.lock().unwrap();
        let mut names: Vec<String> = Vec::new();
        for e in &inner.journal {
            if let Entry::Append { stream, .. } = e {
                if !names.contains(stream) {
                    names.push(stream.clone());
                }
            }
        }
        Ok(names)
    }

    fn truncate(&self, stream: &str, len: u64) -> io::Result<()> {
        let len = len as usize;
        let mut inner = self.inner.lock().unwrap();
        let mut pos = 0;
        let mut journal = Vec::with_capacity(inner.journal.len());
        for e in inner.journal.drain(..) {
            if let Entry::Append { stream: s, bytes } = &e {
                if s == stream {
                    let start = pos;
                    pos += bytes.len();
                    if start >= len {
                        continue; // wholly beyond the cut
                    }
                    if pos > len {
                        journal.push(e.truncated(len - start));
                        continue;
                    }
                }
            }
            journal.push(e);
        }
        // Recovery truncation finalizes the surviving bytes: treat the
        // rewritten journal as durable (DirLog's set_len behaves the same).
        inner.durable_entries = journal.len();
        inner.journal = journal;
        Ok(())
    }

    fn write_blob(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.deleted_blobs.retain(|n| n != name);
        inner.journal.push(Entry::Blob {
            name: name.to_string(),
            bytes: bytes.to_vec(),
        });
        Ok(())
    }

    fn read_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.inner.lock().unwrap().blob_bytes(name))
    }

    fn list_blobs(&self) -> io::Result<Vec<String>> {
        let inner = self.inner.lock().unwrap();
        let mut names: Vec<String> = Vec::new();
        for e in &inner.journal {
            if let Entry::Blob { name, .. } = e {
                if !names.contains(name) && !inner.deleted_blobs.iter().any(|n| n == name) {
                    names.push(name.clone());
                }
            }
        }
        Ok(names)
    }

    fn delete_blob(&self, name: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let name_owned = name.to_string();
        inner
            .journal
            .retain(|e| !matches!(e, Entry::Blob { name: n, .. } if *n == name_owned));
        inner.durable_entries = inner.durable_entries.min(inner.journal.len());
        if !inner.deleted_blobs.contains(&name_owned) {
            inner.deleted_blobs.push(name_owned);
        }
        Ok(())
    }
}

/// [`LogStorage`] over a real directory: streams are `<name>.log` files
/// opened for append, blobs are `<name>.blob` files written via a temp
/// file and an atomic rename. This is what production servers and the
/// kill-recover CI smoke use; the unit-test matrix runs on [`MemLog`].
#[derive(Debug)]
pub struct DirLog {
    dir: PathBuf,
    handles: Mutex<HashMap<String, std::fs::File>>,
}

impl DirLog {
    /// Opens (creating if needed) a log directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<DirLog> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(DirLog {
            dir,
            handles: Mutex::new(HashMap::new()),
        })
    }

    /// The directory backing this log.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn stream_path(&self, stream: &str) -> PathBuf {
        self.dir.join(format!("{stream}.log"))
    }

    fn blob_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.blob"))
    }
}

impl LogStorage for DirLog {
    fn append(&self, stream: &str, bytes: &[u8]) -> io::Result<()> {
        use io::Write;
        let mut handles = self.handles.lock().unwrap();
        if !handles.contains_key(stream) {
            let f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.stream_path(stream))?;
            handles.insert(stream.to_string(), f);
        }
        handles.get_mut(stream).unwrap().write_all(bytes)
    }

    fn sync(&self) -> io::Result<()> {
        for f in self.handles.lock().unwrap().values() {
            f.sync_all()?;
        }
        Ok(())
    }

    fn read(&self, stream: &str) -> io::Result<Vec<u8>> {
        match std::fs::read(self.stream_path(stream)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn streams(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("log") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        Ok(names)
    }

    fn truncate(&self, stream: &str, len: u64) -> io::Result<()> {
        // Drop the cached append handle: append-mode offsets are managed
        // by the kernel, but a fresh handle keeps the bookkeeping simple.
        self.handles.lock().unwrap().remove(stream);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.stream_path(stream))?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn write_blob(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{name}.blob.tmp"));
        std::fs::write(&tmp, bytes)?;
        std::fs::File::open(&tmp)?.sync_all()?;
        std::fs::rename(&tmp, self.blob_path(name))
    }

    fn read_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.blob_path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn list_blobs(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("blob") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        Ok(names)
    }

    fn delete_blob(&self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.blob_path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memlog_appends_and_reads_across_streams() {
        let log = MemLog::new();
        log.append("a", b"one").unwrap();
        log.append("b", b"two").unwrap();
        log.append("a", b"-more").unwrap();
        assert_eq!(log.read("a").unwrap(), b"one-more");
        assert_eq!(log.read("b").unwrap(), b"two");
        assert_eq!(log.read("absent").unwrap(), b"");
        let mut streams = log.streams().unwrap();
        streams.sort();
        assert_eq!(streams, vec!["a", "b"]);
    }

    #[test]
    fn crash_discards_unsynced_suffix_by_byte() {
        let log = MemLog::new();
        log.append("s", b"durable").unwrap();
        log.sync().unwrap();
        log.append("s", b"lost-soon").unwrap();
        log.append("t", b"also-lost").unwrap();
        assert_eq!(log.unsynced_bytes(), 18);
        // Keep 4 unsynced bytes: a mid-append cut of the first entry.
        log.crash(4);
        assert_eq!(log.read("s").unwrap(), b"durablelost");
        assert_eq!(log.read("t").unwrap(), b"");
        assert_eq!(log.unsynced_bytes(), 0, "survivors are durable");
    }

    #[test]
    fn fsync_lies_lose_acknowledged_writes() {
        let log = MemLog::new();
        log.set_fsync_lies(true);
        log.append("s", b"gone").unwrap();
        log.sync().unwrap(); // claims success
        log.crash(0);
        assert_eq!(log.read("s").unwrap(), b"");
        assert_eq!(log.syncs(), 1);
    }

    #[test]
    fn crash_can_leave_partial_blob() {
        let log = MemLog::new();
        log.write_blob("snap", b"0123456789").unwrap();
        log.crash(4);
        assert_eq!(log.read_blob("snap").unwrap().unwrap(), b"0123");
        // A synced blob survives whole.
        log.write_blob("snap2", b"abcdef").unwrap();
        log.sync().unwrap();
        log.crash(0);
        assert_eq!(log.read_blob("snap2").unwrap().unwrap(), b"abcdef");
    }

    #[test]
    fn blob_overwrite_delete_and_list() {
        let log = MemLog::new();
        log.write_blob("x", b"v1").unwrap();
        log.write_blob("x", b"v2").unwrap();
        log.write_blob("y", b"w").unwrap();
        assert_eq!(log.read_blob("x").unwrap().unwrap(), b"v2");
        let mut blobs = log.list_blobs().unwrap();
        blobs.sort();
        assert_eq!(blobs, vec!["x", "y"]);
        log.delete_blob("x").unwrap();
        assert_eq!(log.read_blob("x").unwrap(), None);
        assert_eq!(log.list_blobs().unwrap(), vec!["y"]);
        log.delete_blob("x").unwrap(); // idempotent
    }

    #[test]
    fn truncate_cuts_one_stream_only() {
        let log = MemLog::new();
        log.append("a", b"0123").unwrap();
        log.append("b", b"abcd").unwrap();
        log.append("a", b"4567").unwrap();
        log.truncate("a", 6).unwrap();
        assert_eq!(log.read("a").unwrap(), b"012345");
        assert_eq!(log.read("b").unwrap(), b"abcd");
        log.truncate("a", 0).unwrap();
        assert_eq!(log.read("a").unwrap(), b"");
    }

    #[test]
    fn corrupt_byte_flips_in_place() {
        let log = MemLog::new();
        log.append("s", b"ab").unwrap();
        log.append("s", b"cd").unwrap();
        log.corrupt_byte("s", 2);
        let bytes = log.read("s").unwrap();
        assert_eq!(bytes[0], b'a');
        assert_ne!(bytes[2], b'c');
    }

    #[test]
    fn dirlog_roundtrips_on_disk() {
        let dir = std::env::temp_dir().join(format!("bcq-dirlog-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let log = DirLog::open(&dir).unwrap();
            log.append("rel-0", b"hello ").unwrap();
            log.append("rel-0", b"world").unwrap();
            log.append("meta", b"m").unwrap();
            log.sync().unwrap();
            log.write_blob("snap-1", b"blobby").unwrap();
        }
        {
            // Reopen: everything persisted.
            let log = DirLog::open(&dir).unwrap();
            assert_eq!(log.read("rel-0").unwrap(), b"hello world");
            assert_eq!(log.read("absent").unwrap(), b"");
            let mut streams = log.streams().unwrap();
            streams.sort();
            assert_eq!(streams, vec!["meta", "rel-0"]);
            assert_eq!(log.read_blob("snap-1").unwrap().unwrap(), b"blobby");
            assert_eq!(log.list_blobs().unwrap(), vec!["snap-1"]);
            log.truncate("rel-0", 5).unwrap();
            assert_eq!(log.read("rel-0").unwrap(), b"hello");
            log.append("rel-0", b"!").unwrap();
            assert_eq!(log.read("rel-0").unwrap(), b"hello!");
            log.delete_blob("snap-1").unwrap();
            assert_eq!(log.read_blob("snap-1").unwrap(), None);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
