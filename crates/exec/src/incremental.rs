//! Incremental bounded maintenance — the paper's conclusion item (3a):
//! *"when a query is not effectively bounded, it may be effectively bounded
//! incrementally"* — and, for queries that already are, keeping `Q(D)` up
//! to date under insertions **and deletions** with work proportional to the
//! delta.
//!
//! ## Insertions
//!
//! The construction rides on the planner: when a tuple `t` lands in the
//! relation of atom `S_i`, every *new* answer uses `t` at `S_i`, so the
//! delta is the original query with `S_i`'s parameter columns pinned to
//! `t`'s values — a query with strictly more constants, hence effectively
//! bounded whenever `Q` is (and often with a far smaller `Σ M_i`). The new
//! answer is `Q(D+t) = Q(D) ∪ Δ` under set semantics.
//!
//! ## Deletions: support counting
//!
//! CQs are monotone, so a deletion can only *retract* answers — the
//! question is which. Each maintained answer carries its **support**: the
//! number of stored *derivations*, where a derivation is one surviving
//! `Σ_Q` class assignment from the join pipeline
//! ([`crate::pipeline::run_join_partials`]), canonicalized to the cells it
//! pins at each atom's columns (`None` marks a column no fetched batch
//! constrained — a wildcard, distinct from a column bound to a stored
//! `Value::Null`). Inserts add support (the delta plans above, collected
//! pre-projection); deleting the **last copy** of a row value subtracts
//! the support of every derivation consistent with it, and an answer whose
//! support reaches zero is retracted. Insertion work is bounded like the
//! delta plans themselves; a deletion probes the derivation store through
//! its **inverted index** — per pattern position, bound cells and
//! wildcards map to derivation ids, and the probe walks the smallest
//! posting union among the deleted atom's columns — so retraction touches
//! O(consistent candidates), not O(|store|) (the pre-index full scan
//! survives as [`IncrementalAnswer::on_delete_by_scan`] for the ablation
//! bench and differential tests), plus one bounded rederivation probe per
//! zeroed answer.
//!
//! Wildcard columns make the subtraction conservative (a derivation that
//! *might* rest on the deleted tuple is dropped), so retraction-at-zero is
//! confirmed by a **rederivation probe** — the query with its projection
//! pinned to the candidate answer, again strictly more constants than `Q`
//! and therefore bounded (the DRed refinement of counting-based IVM).
//! Deleting a duplicate copy is a no-op: bag storage, set answers (see
//! [`bcq_storage::Table`]).
//!
//! The caller must mutate the [`Database`] through the maintained paths
//! ([`Database::insert_maintained`] / [`Database::delete_maintained`], or
//! rebuild indices) before notifying, since plans only read through
//! indices.

use crate::eval_dq::eval_dq_partials;
use crate::results::ResultSet;
use bcq_core::access::AccessSchema;
use bcq_core::ebcheck::xq_cols;
use bcq_core::error::{CoreError, Result};
use bcq_core::fx::{FxHashMap, FxHashSet};
use bcq_core::prelude::{Cell, OpProgram, QAttr, RelId, SpcQuery, Value};
use bcq_core::qplan::qplan;
use bcq_core::sigma::Sigma;
use bcq_storage::Database;
use std::sync::Arc;

/// A canonical derivation pattern, shared (`Arc`) between the id map and
/// the slab so each pattern is stored once.
type Pattern = Arc<[Option<Cell>]>;

/// Work done by one delta application.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaStats {
    /// Tuples fetched across the delta / rederivation plans.
    pub tuples_fetched: u64,
    /// Answers added to the maintained result.
    pub added_rows: usize,
    /// Answers retracted from the maintained result.
    pub removed_rows: usize,
    /// Bounded plans executed (per-atom delta plans on insert,
    /// rederivation probes on delete).
    pub plans_run: usize,
    /// Derivations added to the support store.
    pub derivations_added: usize,
    /// Derivations retracted from the support store.
    pub derivations_removed: usize,
    /// Retraction candidates examined while matching the deleted tuple
    /// against the derivation store (posting-union size for the indexed
    /// probe, |store| × atoms for the full scan) — the ablation axis of
    /// the derivation index.
    pub derivations_probed: usize,
}

/// The derivation store: canonical patterns (`None` is the
/// unconstrained-column wildcard — distinct from `Some(Cell::NULL)`, a
/// column bound to a stored `Value::Null`), inverted-indexed by
/// `(position, cell)` so retraction probes only the derivations a deleted
/// tuple can actually be consistent with.
#[derive(Debug, Clone)]
struct DerivationStore {
    /// Pattern → derivation id (set semantics: one id per pattern).
    ids: FxHashMap<Pattern, u32>,
    /// id → pattern (slab; freed slots are `None` and recycled). The
    /// `Arc` is shared with the `ids` key — one allocation per pattern.
    patterns: Vec<Option<Pattern>>,
    free: Vec<u32>,
    /// Per pattern position: bound cell → ids of derivations pinning it.
    bound: Vec<FxHashMap<Cell, FxHashSet<u32>>>,
    /// Per pattern position: ids of derivations with a wildcard there.
    wild: Vec<FxHashSet<u32>>,
}

impl DerivationStore {
    fn new(width: usize) -> Self {
        DerivationStore {
            ids: FxHashMap::default(),
            patterns: Vec::new(),
            free: Vec::new(),
            bound: (0..width).map(|_| FxHashMap::default()).collect(),
            wild: (0..width).map(|_| FxHashSet::default()).collect(),
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    /// Stores `pattern` if new; `false` if it was already present.
    fn insert(&mut self, pattern: Box<[Option<Cell>]>) -> bool {
        use std::collections::hash_map::Entry;
        let pattern: Pattern = Arc::from(pattern);
        let entry = match self.ids.entry(pattern) {
            Entry::Occupied(_) => return false,
            Entry::Vacant(e) => e,
        };
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.patterns.push(None);
                (self.patterns.len() - 1) as u32
            }
        };
        let pattern = entry.key().clone();
        entry.insert(id);
        for (pos, slot) in pattern.iter().enumerate() {
            match slot {
                Some(c) => {
                    self.bound[pos].entry(*c).or_default().insert(id);
                }
                None => {
                    self.wild[pos].insert(id);
                }
            }
        }
        self.patterns[id as usize] = Some(pattern);
        true
    }

    /// Removes derivation `id`, unindexing it, and returns its pattern.
    fn remove(&mut self, id: u32) -> Pattern {
        let pattern = self.patterns[id as usize]
            .take()
            .expect("live derivation id");
        self.ids.remove(&pattern);
        self.free.push(id);
        for (pos, slot) in pattern.iter().enumerate() {
            match slot {
                Some(c) => {
                    if let Some(set) = self.bound[pos].get_mut(c) {
                        set.remove(&id);
                        if set.is_empty() {
                            self.bound[pos].remove(c);
                        }
                    }
                }
                None => {
                    self.wild[pos].remove(&id);
                }
            }
        }
        pattern
    }

    /// Collects into `out` the ids of derivations consistent with tuple
    /// `cells` at the atom whose columns occupy `off..off + cells.len()`:
    /// picks the probe column with the smallest posting union (bound cell
    /// postings + wildcards), then verifies candidates against every
    /// column. `probed` counts candidates examined.
    fn consistent_at(
        &self,
        off: usize,
        cells: &[Cell],
        out: &mut FxHashSet<u32>,
        probed: &mut usize,
    ) {
        let best = (0..cells.len()).min_by_key(|&c| {
            self.bound[off + c].get(&cells[c]).map_or(0, |s| s.len()) + self.wild[off + c].len()
        });
        let Some(best) = best else {
            return; // zero-arity atoms cannot occur (tables reject them)
        };
        let consistent = |&id: &u32| {
            let p = self.patterns[id as usize].as_deref().expect("indexed id");
            cells
                .iter()
                .enumerate()
                .all(|(c, &t)| p[off + c].is_none_or(|pc| pc == t))
        };
        let exact = self.bound[off + best].get(&cells[best]);
        let candidates = exact
            .into_iter()
            .flatten()
            .chain(self.wild[off + best].iter());
        for id in candidates {
            *probed += 1;
            if consistent(id) {
                out.insert(*id);
            }
        }
    }

    /// The full-scan equivalent of [`Self::consistent_at`] — the pre-index
    /// O(|store|) candidate generation, kept as the ablation baseline.
    fn consistent_at_by_scan(
        &self,
        off: usize,
        cells: &[Cell],
        out: &mut FxHashSet<u32>,
        probed: &mut usize,
    ) {
        for (pattern, &id) in self.ids.iter() {
            *probed += 1;
            let ok = cells
                .iter()
                .enumerate()
                .all(|(c, &t)| pattern[off + c].is_none_or(|pc| pc == t));
            if ok {
                out.insert(id);
            }
        }
    }
}

/// A continuously maintained bounded query answer with per-answer support
/// counts (see the module docs for the maintenance algebra).
#[derive(Debug, Clone)]
pub struct IncrementalAnswer {
    query: SpcQuery,
    access: AccessSchema,
    /// Relations the query's atoms read, sorted and deduplicated — the
    /// slice of the storage vector clock this answer's staleness keys on.
    read_rels: Vec<RelId>,
    /// Column offset of each atom inside a derivation pattern.
    offsets: Vec<usize>,
    /// Derivation pattern width: `Σ` atom arities.
    width: usize,
    /// Pattern positions of the projection attributes.
    proj_pos: Vec<usize>,
    /// The stored derivations, inverted-indexed for retraction.
    derivations: DerivationStore,
    /// Projected answer (cells) → support: how many stored derivations
    /// produce it.
    support: FxHashMap<Box<[Cell]>, u64>,
    /// Materialized answer, patched in place (O(changed answers) per
    /// delta, not a full rebuild).
    result: ResultSet,
}

/// What [`IncrementalAnswer::add_derivation`] did.
struct AddOutcome {
    /// The pattern was not stored before.
    new_derivation: bool,
    /// Storing it created the answer's first support entry — the
    /// projection key the materialized result must gain.
    new_answer: Option<Box<[Cell]>>,
}

impl IncrementalAnswer {
    /// Evaluates `q` once (boundedly) and starts maintaining it.
    /// Fails if `q` is not effectively bounded under `a`.
    pub fn initialize(db: &Database, q: &SpcQuery, a: &AccessSchema) -> Result<Self> {
        let mut offsets = Vec::with_capacity(q.num_atoms());
        let mut width = 0usize;
        for atom in 0..q.num_atoms() {
            offsets.push(width);
            width += q.arity_of(atom);
        }
        let proj_pos = q
            .projection()
            .iter()
            .map(|z| offsets[z.atom] + z.col)
            .collect();
        let mut this = IncrementalAnswer {
            query: q.clone(),
            access: a.clone(),
            read_rels: q.read_rels(),
            offsets,
            width,
            proj_pos,
            derivations: DerivationStore::new(width),
            support: FxHashMap::default(),
            result: ResultSet::empty(),
        };
        let plan = qplan(q, a)?;
        let out = eval_dq_partials(db, &plan, a)?;
        for pattern in this.patterns_of(q, plan.program(), &out.partials) {
            this.add_derivation(pattern);
        }
        // One-time materialization; deltas patch it in place afterwards.
        this.result = ResultSet::from_rows(
            this.support
                .keys()
                .map(|cells| cells.iter().map(|&c| db.symbols().decode(c)).collect())
                .collect(),
        );
        Ok(this)
    }

    /// The maintained answer.
    pub fn result(&self) -> &ResultSet {
        &self.result
    }

    /// The maintained query.
    pub fn query(&self) -> &SpcQuery {
        &self.query
    }

    /// The relations the query's atoms read (sorted, deduplicated) — the
    /// slice of the storage vector clock whose advancement can make this
    /// answer stale. Writes to any other relation cannot change it.
    pub fn read_rels(&self) -> &[RelId] {
        &self.read_rels
    }

    /// `true` if some atom of the maintained query reads `rel` — callers
    /// can skip delta application entirely for writes elsewhere.
    pub fn reads(&self, rel: RelId) -> bool {
        self.read_rels.binary_search(&rel).is_ok()
    }

    /// The support (derivation count) of one answer row; `0` if `row` is
    /// not an answer.
    pub fn support_of(&self, db: &Database, row: &[Value]) -> u64 {
        db.symbols()
            .try_encode_row(row)
            .and_then(|cells| self.support.get(cells.as_slice()).copied())
            .unwrap_or(0)
    }

    /// Number of stored derivations (diagnostics: `Σ` of all supports).
    pub fn num_derivations(&self) -> usize {
        self.derivations.len()
    }

    /// Inserts `row` into `db` (maintaining its indices in place via
    /// [`Database::insert_maintained`]) and applies the bounded delta —
    /// the one-call live-update path.
    pub fn insert_and_apply(
        &mut self,
        db: &mut Database,
        rel_name: &str,
        row: &[Value],
    ) -> Result<DeltaStats> {
        let rel = self.query.catalog().require_rel(rel_name)?;
        db.insert_maintained(rel_name, row)?;
        self.on_insert(db, rel, row)
    }

    /// Deletes one copy of `row` from `db` (index-maintained via
    /// [`Database::delete_maintained`]) and applies the retraction delta.
    /// A row that was never stored is a no-op.
    pub fn delete_and_apply(
        &mut self,
        db: &mut Database,
        rel_name: &str,
        row: &[Value],
    ) -> Result<DeltaStats> {
        let rel = self.query.catalog().require_rel(rel_name)?;
        if !db.delete_maintained(rel_name, row)? {
            return Ok(DeltaStats::default());
        }
        self.on_delete(db, rel, row)
    }

    /// Applies an insertion: `row` was added to relation `rel` of `db`
    /// (indices already up to date — use [`Database::insert_maintained`]
    /// or rebuild). Updates the answer with bounded work.
    pub fn on_insert(&mut self, db: &Database, rel: RelId, row: &[Value]) -> Result<DeltaStats> {
        if row.len() != self.query.catalog().relation(rel).arity() {
            return Err(CoreError::Invalid("arity mismatch in on_insert".into()));
        }
        let sigma = Sigma::build(&self.query);
        let mut stats = DeltaStats::default();
        for atom in 0..self.query.num_atoms() {
            if self.query.relation_of(atom) != rel {
                continue;
            }
            // Pin the atom's parameter columns to the inserted tuple.
            let consts: Vec<(QAttr, Value)> = xq_cols(&self.query, &sigma, atom)
                .into_iter()
                .map(|col| (QAttr::new(atom, col), row[col].clone()))
                .collect();
            let delta_q = self.query.with_constants(&consts);
            // More constants than Q ⇒ still effectively bounded; the plan
            // is typically much cheaper than Q's. Self-joins rediscover the
            // same derivations through several atoms — the store is a set,
            // so support is not double-counted.
            let plan = qplan(&delta_q, &self.access)?;
            let out = eval_dq_partials(db, &plan, &self.access)?;
            stats.tuples_fetched += out.meter.tuples_fetched;
            stats.plans_run += 1;
            for pattern in self.patterns_of(&delta_q, plan.program(), &out.partials) {
                let added = self.add_derivation(pattern);
                stats.derivations_added += usize::from(added.new_derivation);
                if let Some(key) = added.new_answer {
                    let row = key.iter().map(|&c| db.symbols().decode(c)).collect();
                    stats.added_rows += usize::from(self.result.insert_sorted(row));
                }
            }
        }
        Ok(stats)
    }

    /// Applies a deletion: one copy of `row` was removed from relation
    /// `rel` of `db` (indices already maintained — use
    /// [`Database::delete_maintained`]). Subtracts support from every
    /// derivation consistent with the deleted tuple — found through the
    /// store's inverted index, O(consistent candidates) — and retracts
    /// answers whose support reaches zero, confirming each retraction with
    /// a bounded rederivation probe.
    pub fn on_delete(&mut self, db: &Database, rel: RelId, row: &[Value]) -> Result<DeltaStats> {
        self.retract(db, rel, row, true)
    }

    /// [`Self::on_delete`] with the pre-index **full scan** of the
    /// derivation store (O(|store|) per delete) as candidate generation.
    /// Semantically identical; kept as the ablation baseline quantifying
    /// the inverted index and as a differential-testing oracle.
    pub fn on_delete_by_scan(
        &mut self,
        db: &Database,
        rel: RelId,
        row: &[Value],
    ) -> Result<DeltaStats> {
        self.retract(db, rel, row, false)
    }

    fn retract(
        &mut self,
        db: &Database,
        rel: RelId,
        row: &[Value],
        use_index: bool,
    ) -> Result<DeltaStats> {
        if row.len() != self.query.catalog().relation(rel).arity() {
            return Err(CoreError::Invalid("arity mismatch in on_delete".into()));
        }
        let mut stats = DeltaStats::default();
        // A never-interned value was never stored: nothing to retract.
        let Some(cells) = db.symbols().try_encode_row(row) else {
            return Ok(stats);
        };
        // Bag storage, set answers: while a duplicate copy of the same
        // value-row survives, every derivation is still supported.
        if db.contains_row(rel, row)? {
            return Ok(stats);
        }
        let atom_offsets: Vec<usize> = (0..self.query.num_atoms())
            .filter(|&atom| self.query.relation_of(atom) == rel)
            .map(|atom| self.offsets[atom])
            .collect();
        if atom_offsets.is_empty() {
            return Ok(stats);
        }

        // Phase 1 — subtract support: drop every derivation consistent
        // with the deleted tuple at some atom over `rel`. Wildcard columns
        // over-approximate — a dropped derivation may still hold through
        // another row — which phase 2 repairs.
        let mut hit: FxHashSet<u32> = FxHashSet::default();
        for &off in &atom_offsets {
            if use_index {
                self.derivations.consistent_at(
                    off,
                    &cells,
                    &mut hit,
                    &mut stats.derivations_probed,
                );
            } else {
                self.derivations.consistent_at_by_scan(
                    off,
                    &cells,
                    &mut hit,
                    &mut stats.derivations_probed,
                );
            }
        }
        let mut zeroed: Vec<Box<[Cell]>> = Vec::new();
        for id in hit {
            let pattern = self.derivations.remove(id);
            stats.derivations_removed += 1;
            let proj = self.project(&pattern);
            if let Some(s) = self.support.get_mut(&proj) {
                *s -= 1;
                if *s == 0 {
                    zeroed.push(proj);
                }
            }
        }

        // Phase 2 — rederive at zero: an answer that lost all support is
        // retracted unless the query with its projection pinned to the
        // answer (strictly more constants ⇒ still bounded) rederives it.
        for proj in zeroed {
            let consts: Vec<(QAttr, Value)> = self
                .query
                .projection()
                .iter()
                .zip(proj.iter())
                .map(|(z, &c)| (*z, db.symbols().decode(c)))
                .collect();
            let probe_q = self.query.with_constants(&consts);
            let plan = qplan(&probe_q, &self.access)?;
            let out = eval_dq_partials(db, &plan, &self.access)?;
            stats.tuples_fetched += out.meter.tuples_fetched;
            stats.plans_run += 1;
            for pattern in self.patterns_of(&probe_q, plan.program(), &out.partials) {
                // The zeroed entry still exists (at 0), so rederived
                // support lands on it — never a "new" answer.
                stats.derivations_added += usize::from(self.add_derivation(pattern).new_derivation);
            }
            if self.support.get(&proj).copied().unwrap_or(0) == 0 {
                // Retracted for real.
                self.support.remove(&proj);
                let row: Box<[Value]> = proj.iter().map(|&c| db.symbols().decode(c)).collect();
                stats.removed_rows += usize::from(self.result.remove_sorted(&row));
            }
        }
        Ok(stats)
    }

    /// Canonicalizes the class assignments of an evaluation of `q_like`
    /// (the query itself, a per-atom delta, or a rederivation probe — all
    /// share the original's atom layout, differing only in extra constant
    /// predicates) into derivation patterns: one cell per atom column,
    /// `None` where the class was not bound (distinct from a column bound
    /// to a stored `Value::Null`, which is `Some(Cell::NULL)`). The
    /// attribute→class map comes precompiled from the delta plan's
    /// [`OpProgram`] — the same program the partials were produced through.
    fn patterns_of(
        &self,
        q_like: &SpcQuery,
        prog: &OpProgram,
        partials: &[Box<[Option<Cell>]>],
    ) -> Vec<Box<[Option<Cell>]>> {
        debug_assert_eq!(q_like.num_atoms(), self.query.num_atoms());
        let mut out = Vec::with_capacity(partials.len());
        for partial in partials {
            let mut pattern = vec![None; self.width];
            for atom in 0..q_like.num_atoms() {
                for col in 0..q_like.arity_of(atom) {
                    let class = prog.class_of_flat(q_like.flat_id(QAttr::new(atom, col)));
                    pattern[self.offsets[atom] + col] = partial[class];
                }
            }
            out.push(pattern.into_boxed_slice());
        }
        out
    }

    /// The projected answer cells of a derivation pattern.
    fn project(&self, pattern: &[Option<Cell>]) -> Box<[Cell]> {
        self.proj_pos
            .iter()
            .map(|&p| pattern[p].expect("projection classes are always bound"))
            .collect()
    }

    /// Stores a derivation, bumping its answer's support if it was new.
    fn add_derivation(&mut self, pattern: Box<[Option<Cell>]>) -> AddOutcome {
        use std::collections::hash_map::Entry;
        let proj = self.project(&pattern);
        if !self.derivations.insert(pattern) {
            return AddOutcome {
                new_derivation: false,
                new_answer: None,
            };
        }
        match self.support.entry(proj) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += 1;
                AddOutcome {
                    new_derivation: true,
                    new_answer: None,
                }
            }
            Entry::Vacant(e) => {
                let key = e.key().clone();
                e.insert(1);
                AddOutcome {
                    new_derivation: true,
                    new_answer: Some(key),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_dq::eval_dq;
    use bcq_core::prelude::*;
    use std::sync::Arc;

    fn setup() -> (Database, AccessSchema, SpcQuery) {
        let catalog = Catalog::from_names(&[
            ("in_album", &["photo_id", "album_id"]),
            ("friends", &["user_id", "friend_id"]),
            ("tagging", &["photo_id", "tagger_id", "taggee_id"]),
        ])
        .unwrap();
        let mut a = AccessSchema::new(Arc::clone(&catalog));
        a.add("in_album", &["album_id"], &["photo_id"], 1000)
            .unwrap();
        a.add("friends", &["user_id"], &["friend_id"], 5000)
            .unwrap();
        a.add("tagging", &["photo_id", "taggee_id"], &["tagger_id"], 1)
            .unwrap();
        let mut db = Database::new(Arc::clone(&catalog));
        for (p, al) in [("p1", "a0"), ("p2", "a0")] {
            db.insert("in_album", &[Value::str(p), Value::str(al)])
                .unwrap();
        }
        db.insert("friends", &[Value::str("u0"), Value::str("u1")])
            .unwrap();
        db.insert(
            "tagging",
            &[Value::str("p1"), Value::str("u1"), Value::str("u0")],
        )
        .unwrap();
        db.build_indexes(&a);
        let q = SpcQuery::builder(catalog, "Q0")
            .atom("in_album", "ia")
            .atom("friends", "f")
            .atom("tagging", "t")
            .eq_const(("ia", "album_id"), "a0")
            .eq_const(("f", "user_id"), "u0")
            .eq(("ia", "photo_id"), ("t", "photo_id"))
            .eq(("t", "tagger_id"), ("f", "friend_id"))
            .eq_const(("t", "taggee_id"), "u0")
            .project(("ia", "photo_id"))
            .build()
            .unwrap();
        (db, a, q)
    }

    fn full_reference(db: &Database, q: &SpcQuery, a: &AccessSchema) -> ResultSet {
        let plan = qplan(q, a).unwrap();
        eval_dq(db, &plan, a).unwrap().result
    }

    #[test]
    fn insertions_are_reflected_incrementally() {
        let (mut db, a, q) = setup();
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.result().len(), 1); // p1

        // A new tagging row makes p2 an answer — one call, indices
        // maintained in place (no rebuild).
        let row = [Value::str("p2"), Value::str("u1"), Value::str("u0")];
        let indexes_before = db.num_indexes();
        let stats = inc.insert_and_apply(&mut db, "tagging", &row).unwrap();
        assert_eq!(db.num_indexes(), indexes_before, "no index invalidation");
        assert_eq!(stats.plans_run, 1);
        assert_eq!(stats.added_rows, 1);
        assert!(inc.result().contains(&[Value::str("p2")]));
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
    }

    #[test]
    fn irrelevant_insertions_add_nothing() {
        let (mut db, a, q) = setup();
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        // A friendship of another user cannot create answers.
        let row = [Value::str("u9"), Value::str("u3")];
        db.insert("friends", &row).unwrap();
        db.build_indexes(&a);
        let stats = inc
            .on_insert(&db, db.catalog().rel_id("friends").unwrap(), &row)
            .unwrap();
        assert_eq!(stats.added_rows, 0);
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
        // The delta work is tiny: keyed on the new tuple's values.
        assert!(stats.tuples_fetched <= 8, "{stats:?}");
    }

    #[test]
    fn friend_insertion_activates_existing_tag() {
        let (mut db, a, q) = setup();
        // Tag by u2 exists but u2 is not yet a friend.
        let tag = [Value::str("p2"), Value::str("u2"), Value::str("u0")];
        db.insert("tagging", &tag).unwrap();
        db.build_indexes(&a);
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.result().len(), 1);

        // u2 becomes a friend of u0: p2 should appear.
        let row = [Value::str("u0"), Value::str("u2")];
        db.insert("friends", &row).unwrap();
        db.build_indexes(&a);
        inc.on_insert(&db, db.catalog().rel_id("friends").unwrap(), &row)
            .unwrap();
        assert!(inc.result().contains(&[Value::str("p2")]));
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
    }

    #[test]
    fn self_join_queries_apply_deltas_per_atom() {
        let cat = Catalog::from_names(&[("e", &["src", "dst"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("e", &["src"], &["dst"], 16).unwrap();
        a.add("e", &["dst"], &["src"], 16).unwrap();
        // Two-hop neighbours of node 1.
        let q = SpcQuery::builder(cat.clone(), "two_hop")
            .atom("e", "e1")
            .atom("e", "e2")
            .eq_const(("e1", "src"), 1)
            .eq(("e2", "src"), ("e1", "dst"))
            .project(("e2", "dst"))
            .build()
            .unwrap();
        let mut db = Database::new(cat.clone());
        db.insert("e", &[Value::int(1), Value::int(2)]).unwrap();
        db.build_indexes(&a);
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.result().len(), 0);

        // (2, 3) completes a path through atom e2 — and as atom e1 it is
        // irrelevant. Both delta plans run.
        let row = [Value::int(2), Value::int(3)];
        db.insert("e", &row).unwrap();
        db.build_indexes(&a);
        let stats = inc.on_insert(&db, RelId(0), &row).unwrap();
        assert_eq!(stats.plans_run, 2);
        assert!(inc.result().contains(&[Value::int(3)]));
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));

        // Deleting the edge that formed the path retracts the answer;
        // deleting it again changes nothing.
        let stats = inc.delete_and_apply(&mut db, "e", &row).unwrap();
        assert_eq!(stats.removed_rows, 1);
        assert!(inc.result().is_empty());
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
        let stats = inc.delete_and_apply(&mut db, "e", &row).unwrap();
        assert_eq!(stats.removed_rows, 0);
        assert_eq!(stats.plans_run, 0);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (db, a, q) = setup();
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert!(inc
            .on_insert(&db, RelId(0), &[Value::str("only-one")])
            .is_err());
        assert!(inc
            .on_delete(&db, RelId(0), &[Value::str("only-one")])
            .is_err());
    }

    #[test]
    fn deletion_retracts_answers_and_matches_reference() {
        let (mut db, a, q) = setup();
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.result().len(), 1);

        let tag = [Value::str("p1"), Value::str("u1"), Value::str("u0")];
        let stats = inc.delete_and_apply(&mut db, "tagging", &tag).unwrap();
        assert_eq!(stats.removed_rows, 1);
        assert!(stats.derivations_removed >= 1);
        assert!(inc.result().is_empty());
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
    }

    #[test]
    fn support_survives_alternative_derivations() {
        // p1 is tagged by *two* friends of u0: deleting one tagging keeps
        // the answer (support drops but stays positive, or the rederivation
        // probe confirms it); deleting both retracts it.
        let (mut db, a, q) = setup();
        db.insert("friends", &[Value::str("u0"), Value::str("u2")])
            .unwrap();
        db.insert(
            "tagging",
            &[Value::str("p1"), Value::str("u2"), Value::str("u0")],
        )
        .unwrap();
        db.build_indexes(&a);
        // The access schema declares tagging: (photo, taggee) -> (tagger, 1)
        // but p1+u0 now has two taggers; the data violates the bound but
        // answers stay exact (witnesses are never truncated).
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.result().len(), 1);
        assert!(inc.support_of(&db, &[Value::str("p1")]) >= 2, "two taggers");

        let t1 = [Value::str("p1"), Value::str("u1"), Value::str("u0")];
        inc.delete_and_apply(&mut db, "tagging", &t1).unwrap();
        assert!(inc.result().contains(&[Value::str("p1")]), "u2 still tags");
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));

        let t2 = [Value::str("p1"), Value::str("u2"), Value::str("u0")];
        inc.delete_and_apply(&mut db, "tagging", &t2).unwrap();
        assert!(inc.result().is_empty());
        assert_eq!(inc.support_of(&db, &[Value::str("p1")]), 0);
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
    }

    #[test]
    fn duplicate_copies_follow_bag_semantics() {
        // Two copies of the same tagging row: deleting one keeps the
        // answer (set semantics over bag storage), deleting the last copy
        // retracts it.
        let (mut db, a, q) = setup();
        let tag = [Value::str("p1"), Value::str("u1"), Value::str("u0")];
        db.insert("tagging", &tag).unwrap();
        db.build_indexes(&a);
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.result().len(), 1);
        let support = inc.support_of(&db, &[Value::str("p1")]);

        let stats = inc.delete_and_apply(&mut db, "tagging", &tag).unwrap();
        assert_eq!(stats.removed_rows, 0, "a duplicate copy survives");
        assert_eq!(stats.derivations_removed, 0, "support untouched");
        assert_eq!(inc.support_of(&db, &[Value::str("p1")]), support);
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));

        let stats = inc.delete_and_apply(&mut db, "tagging", &tag).unwrap();
        assert_eq!(stats.removed_rows, 1, "last copy retracts");
        assert!(inc.result().is_empty());
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
    }

    #[test]
    fn stored_nulls_are_not_wildcards() {
        // Value::Null is a first-class storable value; a derivation column
        // *bound* to Null must not behave like the unconstrained-column
        // wildcard during retraction matching (and must project cleanly).
        let cat = Catalog::from_names(&[("r", &["a", "b"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r", &["a"], &["b"], 16).unwrap();
        let q = SpcQuery::builder(cat.clone(), "b_of_1")
            .atom("r", "r")
            .eq_const(("r", "a"), 1)
            .project(("r", "b"))
            .build()
            .unwrap();
        let mut db = Database::new(cat);
        db.insert("r", &[Value::int(1), Value::Null]).unwrap();
        db.insert("r", &[Value::int(1), Value::int(2)]).unwrap();
        db.build_indexes(&a);
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.result().len(), 2);
        assert!(inc.result().contains(&[Value::Null]));
        assert_eq!(inc.support_of(&db, &[Value::Null]), 1);

        // Deleting the non-null row must leave the Null answer standing…
        inc.delete_and_apply(&mut db, "r", &[Value::int(1), Value::int(2)])
            .unwrap();
        assert!(inc.result().contains(&[Value::Null]));
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));

        // …and deleting the Null row retracts exactly it.
        inc.delete_and_apply(&mut db, "r", &[Value::int(1), Value::Null])
            .unwrap();
        assert!(inc.result().is_empty());
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
    }

    #[test]
    fn read_rels_are_sorted_and_deduplicated() {
        let (db, a, q) = setup();
        let inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.read_rels(), &[RelId(0), RelId(1), RelId(2)]);
        for rel in [RelId(0), RelId(1), RelId(2)] {
            assert!(inc.reads(rel));
        }

        // A self-join dedups to one relation.
        let cat = Catalog::from_names(&[("e", &["src", "dst"]), ("x", &["a"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("e", &["src"], &["dst"], 16).unwrap();
        let q = SpcQuery::builder(cat.clone(), "two_hop")
            .atom("e", "e1")
            .atom("e", "e2")
            .eq_const(("e1", "src"), 1)
            .eq(("e2", "src"), ("e1", "dst"))
            .project(("e2", "dst"))
            .build()
            .unwrap();
        let mut db = Database::new(cat);
        db.build_indexes(&a);
        let inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.read_rels(), &[RelId(0)]);
        assert!(!inc.reads(RelId(1)), "x is never read");
    }

    #[test]
    fn indexed_retraction_agrees_with_full_scan_and_probes_less() {
        // Build a store with many derivations (one per friend pair), then
        // delete rows through both candidate-generation paths: identical
        // retraction, far fewer candidates probed by the index.
        let cat = Catalog::from_names(&[("friends", &["user_id", "friend_id"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("friends", &["user_id"], &["friend_id"], 64).unwrap();
        let q = SpcQuery::builder(cat.clone(), "friends_of_0")
            .atom("friends", "f")
            .eq_const(("f", "user_id"), 0)
            .project(("f", "friend_id"))
            .build()
            .unwrap();
        let mut db = Database::new(cat);
        for u in 0..8i64 {
            for f in 0..8i64 {
                db.insert("friends", &[Value::int(u), Value::int(u * 8 + f)])
                    .unwrap();
            }
        }
        db.build_indexes(&a);
        let base = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(base.result().len(), 8);
        let store_size = base.num_derivations();

        let victim = [Value::int(0), Value::int(3)];
        let mut deleted = db.clone();
        assert!(deleted.delete_maintained("friends", &victim).unwrap());

        let mut by_index = base.clone();
        let s1 = by_index.on_delete(&deleted, RelId(0), &victim).unwrap();
        let mut by_scan = base.clone();
        let s2 = by_scan
            .on_delete_by_scan(&deleted, RelId(0), &victim)
            .unwrap();

        assert_eq!(by_index.result(), by_scan.result(), "identical retraction");
        assert_eq!(s1.removed_rows, s2.removed_rows);
        assert_eq!(s1.derivations_removed, s2.derivations_removed);
        assert_eq!(s2.derivations_probed, store_size, "scan touches the store");
        assert!(
            s1.derivations_probed < store_size / 2,
            "index probed {} of {store_size}",
            s1.derivations_probed
        );
        assert_eq!(by_index.result(), &full_reference(&deleted, &q, &a));
    }

    #[test]
    fn interleaved_inserts_and_deletes_track_reference() {
        let (mut db, a, q) = setup();
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        let t = |p: &str, tagger: &str| [Value::str(p), Value::str(tagger), Value::str("u0")];
        let f = |u: &str, v: &str| [Value::str(u), Value::str(v)];

        inc.insert_and_apply(&mut db, "tagging", &t("p2", "u1"))
            .unwrap();
        inc.insert_and_apply(&mut db, "friends", &f("u0", "u2"))
            .unwrap();
        inc.delete_and_apply(&mut db, "tagging", &t("p1", "u1"))
            .unwrap();
        inc.insert_and_apply(&mut db, "tagging", &t("p1", "u2"))
            .unwrap();
        inc.delete_and_apply(&mut db, "friends", &f("u0", "u1"))
            .unwrap();
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
        // p2's only tagger u1 is no longer a friend; p1 is tagged by u2.
        assert!(inc.result().contains(&[Value::str("p1")]));
        assert!(!inc.result().contains(&[Value::str("p2")]));

        inc.delete_and_apply(&mut db, "in_album", &[Value::str("p1"), Value::str("a0")])
            .unwrap();
        assert!(inc.result().is_empty());
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
    }
}
