//! Hash indices implementing the retrieval side of access constraints.
//!
//! The index mandated by `X → (Y, N)` must, given an `X`-value `ā`, return a
//! witness set `D' ⊆ D` with `|D'| ≤ N` covering all distinct `Y`-values
//! `D_Y(X = ā)`, at a cost measured in `N` (Section 2). [`HashIndex`] keeps
//! two posting lists per key:
//!
//! * **witnesses** — one row id per distinct `Y`-projection: what the
//!   bounded executor (`evalDQ`) reads; its size is what access constraints
//!   bound;
//! * **all** — every matching row id: what a conventional DBMS reads through
//!   a secondary index (it fetches whole rows, duplicates included — the
//!   behaviour the paper observed in MySQL's logs), used by the baseline.
//!
//! Keys and `Y`-projections are interned [`Cell`] rows, so probing hashes a
//! handful of `u64` words — never string bytes — regardless of the value
//! types in the indexed columns.

use crate::table::Table;
use bcq_core::fx::{FxHashMap, FxHashSet};
use bcq_core::prelude::{Cell, RowBuf};

/// Posting lists for one `X`-value.
#[derive(Debug, Clone, Default)]
pub struct Postings {
    /// Every row with this key, in insertion order.
    pub all: Vec<u32>,
    /// One row per distinct `Y`-projection, in first-seen order.
    pub witnesses: Vec<u32>,
    /// The distinct `Y`-projections behind `witnesses` (kept so
    /// [`HashIndex::insert_row`] can maintain witness semantics in O(1)).
    pub(crate) y_seen: FxHashSet<RowBuf>,
}

/// A hash index on key columns `x` exposing value columns `y`.
#[derive(Debug, Clone)]
pub struct HashIndex {
    x: Vec<usize>,
    y: Vec<usize>,
    map: FxHashMap<RowBuf, Postings>,
    max_witnesses: usize,
}

static EMPTY: &[u32] = &[];

impl HashIndex {
    /// Builds the index for key columns `x` and value columns `y` (both
    /// sorted column index lists, as stored in an
    /// [`bcq_core::access::AccessConstraint`]).
    pub fn build(table: &Table, x: &[usize], y: &[usize]) -> HashIndex {
        let mut idx = HashIndex {
            x: x.to_vec(),
            y: y.to_vec(),
            map: FxHashMap::default(),
            max_witnesses: 0,
        };
        for (rid, row) in table.rows().enumerate() {
            idx.insert_row(rid as u32, row);
        }
        idx
    }

    /// Key columns.
    pub fn x(&self) -> &[usize] {
        &self.x
    }

    /// Value columns.
    pub fn y(&self) -> &[usize] {
        &self.y
    }

    /// Witness rows for `key`: at most one per distinct `Y`-value.
    pub fn witnesses(&self, key: &[Cell]) -> &[u32] {
        self.map.get(key).map_or(EMPTY, |p| &p.witnesses)
    }

    /// All rows matching `key` (what a conventional index scan returns).
    pub fn all(&self, key: &[Cell]) -> &[u32] {
        self.map.get(key).map_or(EMPTY, |p| &p.all)
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// The largest witness set across keys — the smallest `N` for which the
    /// indexed table satisfies `X → (Y, N)`. Used by constraint validation
    /// and by constraint *discovery* from data.
    pub fn max_witnesses(&self) -> usize {
        self.max_witnesses
    }

    /// Iterates over `(key, postings)` pairs (unspecified order).
    pub fn entries(&self) -> impl Iterator<Item = (&[Cell], &Postings)> + '_ {
        self.map.iter().map(|(k, p)| (k.as_slice(), p))
    }

    /// Maintains the index for a newly appended row (`rid` must be the
    /// row's id in the table the index was built from). Amortized
    /// O(|X| + |Y|).
    ///
    /// Witness semantics are preserved: the row becomes a witness only if
    /// its `Y`-projection is new for its key.
    pub fn insert_row(&mut self, rid: u32, row: &[Cell]) {
        let key: RowBuf = self.x.iter().map(|&c| row[c]).collect();
        let yproj: RowBuf = self.y.iter().map(|&c| row[c]).collect();
        let entry = self.map.entry(key).or_default();
        entry.all.push(rid);
        if entry.y_seen.insert(yproj) {
            entry.witnesses.push(rid);
            self.max_witnesses = self.max_witnesses.max(entry.witnesses.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcq_core::prelude::{RelId, SymbolTable, Value};

    fn table_and_symbols() -> (Table, SymbolTable) {
        // (user, friend): user 1 has friends a, a, b (duplicate row); user 2
        // has friend c.
        let mut symbols = SymbolTable::new();
        let mut t = Table::new(RelId(0), 2);
        for (u, f) in [(1, "a"), (1, "a"), (1, "b"), (2, "c")] {
            t.push(&symbols.encode_row(&[Value::int(u), Value::str(f)]));
        }
        (t, symbols)
    }

    fn key(symbols: &SymbolTable, vals: &[Value]) -> RowBuf {
        symbols.try_encode_row(vals).expect("probe values interned")
    }

    #[test]
    fn witnesses_dedup_by_y() {
        let (t, s) = table_and_symbols();
        let idx = HashIndex::build(&t, &[0], &[1]);
        let w = idx.witnesses(&key(&s, &[Value::int(1)]));
        assert_eq!(w, &[0, 2]); // rows 0 ("a") and 2 ("b"); row 1 is a dup
        let all = idx.all(&key(&s, &[Value::int(1)]));
        assert_eq!(all, &[0, 1, 2]);
    }

    #[test]
    fn witnesses_cover_all_distinct_y() {
        // Contract: the witness rows' Y-projections must equal the set of
        // distinct Y-projections across the full posting list.
        let (t, s) = table_and_symbols();
        let idx = HashIndex::build(&t, &[0], &[1]);
        for (k, postings) in idx.entries() {
            let witness_y: FxHashSet<RowBuf> = postings
                .witnesses
                .iter()
                .map(|&rid| idx.y().iter().map(|&c| t.row(rid as usize)[c]).collect())
                .collect();
            let all_y: FxHashSet<RowBuf> = postings
                .all
                .iter()
                .map(|&rid| idx.y().iter().map(|&c| t.row(rid as usize)[c]).collect())
                .collect();
            assert_eq!(witness_y, all_y, "key {:?}", s.decode_row(k));
            assert_eq!(postings.witnesses.len(), witness_y.len(), "no duplicates");
        }
    }

    #[test]
    fn missing_key_is_empty() {
        let (t, s) = table_and_symbols();
        let idx = HashIndex::build(&t, &[0], &[1]);
        assert!(idx.witnesses(&key(&s, &[Value::int(99)])).is_empty());
        assert!(idx.all(&key(&s, &[Value::int(99)])).is_empty());
        // A never-interned string cannot even produce a key.
        assert!(s.try_encode_row(&[Value::str("ghost")]).is_none());
    }

    #[test]
    fn max_witnesses_reports_tightest_n() {
        let (t, _) = table_and_symbols();
        let idx = HashIndex::build(&t, &[0], &[1]);
        assert_eq!(idx.max_witnesses(), 2); // user 1 has two distinct friends
        assert_eq!(idx.num_keys(), 2);
    }

    #[test]
    fn empty_key_columns_group_everything() {
        // Bounded-domain style: X = ∅ puts all rows under one key.
        let (t, _) = table_and_symbols();
        let idx = HashIndex::build(&t, &[], &[1]);
        let w = idx.witnesses(&[]);
        assert_eq!(w.len(), 3); // distinct friends: a, b, c
        assert_eq!(idx.all(&[]).len(), 4);
        assert_eq!(idx.num_keys(), 1);
    }

    #[test]
    fn multi_column_keys() {
        let (t, s) = table_and_symbols();
        let idx = HashIndex::build(&t, &[0, 1], &[0]);
        // (1, "a") appears twice but y-projection (just col 0 here) dedups
        // to one witness.
        let k = key(&s, &[Value::int(1), Value::str("a")]);
        assert_eq!(idx.witnesses(&k).len(), 1);
        assert_eq!(idx.all(&k).len(), 2);
    }

    #[test]
    fn empty_table_index() {
        let t = Table::new(RelId(0), 2);
        let idx = HashIndex::build(&t, &[0], &[1]);
        assert_eq!(idx.num_keys(), 0);
        assert_eq!(idx.max_witnesses(), 0);
    }
}
