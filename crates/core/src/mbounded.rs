//! `M`-boundedness (Section 5.2, Theorem 8): is there a plan fetching at
//! most `M` tuples?
//!
//! When the bound `M` is part of the input, deciding (effective)
//! `M`-boundedness is NP-complete — minimizing `Σ M_i` requires choosing
//! *which* fetches to share between atoms. This module provides:
//!
//! * [`min_dq_bound_greedy`] — the PTIME upper bound realized by
//!   [`crate::qplan`] (Dijkstra-minimal derivations, per-atom greedy anchor
//!   choice);
//! * [`min_dq_bound_exact`] — an exact exponential search over subsets of
//!   *fetch ops* (atom × constraint pairs), used to quantify the greedy
//!   gap in tests and the `ablation_greedy_vs_min_bound` bench;
//! * [`is_effectively_m_bounded`] — the Theorem 8 decision problem, answered
//!   with the exact search.
//!
//! The exact cost model charges each selected op
//! `N · Π (class bound of its premises)` where class bounds are the minimum
//! over selected ops producing the class — a slight overestimate versus the
//! executor (which pairs key columns fetched by the same step row-wise),
//! identical to the estimate `qplan` optimizes, so greedy-vs-exact
//! comparisons are apples-to-apples.

use crate::access::AccessSchema;
use crate::ebcheck::{ebcheck, xq_cols};
use crate::qplan::qplan;
use crate::query::{QAttr, SpcQuery};
use crate::sigma::{ClassId, Sigma};

/// The `Σ M_i` bound of the plan produced by the greedy [`crate::qplan`],
/// or `None` if `q` is not effectively bounded under `a`.
pub fn min_dq_bound_greedy(q: &SpcQuery, a: &AccessSchema) -> Option<u128> {
    qplan(q, a).ok().map(|p| p.cost_bound())
}

/// One candidate fetch op: probe `constraint`'s index on `atom`.
struct Op {
    atom: usize,
    premises: Vec<ClassId>,
    outputs: Vec<ClassId>,
    n: u64,
    /// `true` if this op can anchor its atom (constraint covers `X^i_Q`).
    anchors: bool,
}

/// Exact minimum `Σ M_i` over all plan shapes, by exhaustive search over
/// subsets of fetch ops. `max_ops` caps the search space (`2^max_ops`
/// subsets); queries inducing more candidate ops return `None`, as do
/// queries that are not effectively bounded.
pub fn min_dq_bound_exact(q: &SpcQuery, a: &AccessSchema, max_ops: usize) -> Option<u128> {
    let sigma = Sigma::build(q);
    if !sigma.is_satisfiable() {
        return Some(0);
    }
    if !ebcheck(q, a).effectively_bounded {
        return None;
    }

    // Build the op universe.
    let mut ops: Vec<Op> = Vec::new();
    for atom in 0..q.num_atoms() {
        let xq = xq_cols(q, &sigma, atom);
        let rel = q.relation_of(atom);
        let covering = a.covering_constraints(rel, &xq);
        for &cid in a.for_relation(rel) {
            let c = a.constraint(cid);
            let class_of = |col: usize| sigma.class_of_flat(q.flat_id(QAttr::new(atom, col)));
            let mut premises: Vec<ClassId> = c.x().iter().map(|&x| class_of(x)).collect();
            premises.sort_unstable();
            premises.dedup();
            let mut outputs: Vec<ClassId> = c.covered().iter().map(|&y| class_of(y)).collect();
            outputs.sort_unstable();
            outputs.dedup();
            ops.push(Op {
                atom,
                premises,
                outputs,
                n: c.n(),
                anchors: !xq.is_empty() && covering.contains(&cid),
            });
        }
    }
    if ops.len() > max_ops || ops.len() >= 31 {
        return None;
    }

    let num_classes = sigma.num_classes();
    let const_class: Vec<bool> = (0..num_classes)
        .map(|i| sigma.class(ClassId(i)).constant.is_some())
        .collect();
    // Atoms needing an anchor (those with parameters); parameter-free atoms
    // cost one `FetchAny` tuple each.
    let needs_anchor: Vec<bool> = (0..q.num_atoms())
        .map(|atom| !xq_cols(q, &sigma, atom).is_empty())
        .collect();
    let fetch_any_cost = needs_anchor.iter().filter(|b| !**b).count() as u128;

    let mut best: Option<u128> = None;
    let n_ops = ops.len();
    'subsets: for mask in 0u32..(1u32 << n_ops) {
        // Evaluate class bounds under this subset by min-fixpoint.
        let mut class_bound: Vec<Option<u128>> = const_class
            .iter()
            .map(|&c| if c { Some(1) } else { None })
            .collect();
        let mut op_bound: Vec<Option<u128>> = vec![None; n_ops];
        loop {
            let mut changed = false;
            for (i, op) in ops.iter().enumerate() {
                if mask & (1 << i) == 0 {
                    continue;
                }
                let mut b = u128::from(op.n);
                let mut derivable = true;
                for p in &op.premises {
                    match class_bound[p.0] {
                        Some(pb) => b = b.saturating_mul(pb),
                        None => {
                            derivable = false;
                            break;
                        }
                    }
                }
                if !derivable {
                    continue;
                }
                if op_bound[i].is_none_or(|old| b < old) {
                    op_bound[i] = Some(b);
                    changed = true;
                }
                for o in &op.outputs {
                    if class_bound[o.0].is_none_or(|old| b < old) {
                        class_bound[o.0] = Some(b);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // All selected ops must be derivable (otherwise the subset wastes
        // budget on unreachable fetches — an equivalent cheaper subset
        // exists, so skip).
        let mut cost = fetch_any_cost;
        #[allow(clippy::needless_range_loop)]
        for i in 0..n_ops {
            if mask & (1 << i) != 0 {
                match op_bound[i] {
                    Some(b) => cost = cost.saturating_add(b),
                    None => continue 'subsets,
                }
            }
        }
        // Every parameter-bearing atom needs a derivable anchor in the set.
        #[allow(clippy::needless_range_loop)]
        for atom in 0..q.num_atoms() {
            if !needs_anchor[atom] {
                continue;
            }
            let anchored = ops.iter().enumerate().any(|(i, op)| {
                mask & (1 << i) != 0 && op.atom == atom && op.anchors && op_bound[i].is_some()
            });
            if !anchored {
                continue 'subsets;
            }
        }
        if best.is_none_or(|b| cost < b) {
            best = Some(cost);
        }
    }
    best
}

/// Theorem 8's decision problem: does a plan fetching at most `m` tuples
/// exist? Answered exactly (exponential in the op count, capped by
/// `max_ops`); `None` means the search was infeasible (not effectively
/// bounded, or too many ops).
pub fn is_effectively_m_bounded(
    q: &SpcQuery,
    a: &AccessSchema,
    m: u128,
    max_ops: usize,
) -> Option<bool> {
    min_dq_bound_exact(q, a, max_ops).map(|c| c <= m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::fixtures::{a0, q0, q1};
    use crate::schema::Catalog;

    #[test]
    fn q0_greedy_equals_exact() {
        let q = q0();
        let a = a0();
        let greedy = min_dq_bound_greedy(&q, &a).unwrap();
        let exact = min_dq_bound_exact(&q, &a, 20).unwrap();
        assert_eq!(greedy, 7000);
        assert_eq!(exact, 7000);
    }

    #[test]
    fn m_bounded_decision_thresholds() {
        let q = q0();
        let a = a0();
        assert_eq!(is_effectively_m_bounded(&q, &a, 7000, 20), Some(true));
        assert_eq!(is_effectively_m_bounded(&q, &a, 6999, 20), Some(false));
        assert_eq!(is_effectively_m_bounded(&q, &a, 1 << 40, 20), Some(true));
    }

    #[test]
    fn not_effectively_bounded_has_no_bound() {
        assert!(min_dq_bound_greedy(&q1(), &a0()).is_none());
        assert!(min_dq_bound_exact(&q1(), &a0(), 20).is_none());
        assert!(is_effectively_m_bounded(&q1(), &a0(), u128::MAX, 20).is_none());
    }

    #[test]
    fn exact_never_exceeds_greedy() {
        // A query with redundant constraints: exact ≤ greedy must hold.
        let cat = Catalog::from_names(&[("r", &["a", "b", "c"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r", &["a"], &["b"], 8).unwrap();
        a.add("r", &["a"], &["b", "c"], 12).unwrap();
        a.add("r", &["b"], &["c"], 2).unwrap();
        let q = SpcQuery::builder(cat, "q")
            .atom("r", "r")
            .eq_const(("r", "a"), 1)
            .project(("r", "b"))
            .project(("r", "c"))
            .build()
            .unwrap();
        let greedy = min_dq_bound_greedy(&q, &a).unwrap();
        let exact = min_dq_bound_exact(&q, &a, 20).unwrap();
        assert!(exact <= greedy, "exact {exact} > greedy {greedy}");
        // Here the single covering constraint a -> (b,c) costs 12.
        assert_eq!(exact, 12);
    }

    #[test]
    fn op_cap_returns_none() {
        assert!(min_dq_bound_exact(&q0(), &a0(), 2).is_none());
    }

    #[test]
    fn unsatisfiable_is_zero_bounded() {
        let cat = Catalog::from_names(&[("r", &["a", "b"])]).unwrap();
        let q = SpcQuery::builder(cat.clone(), "bad")
            .atom("r", "r")
            .eq_const(("r", "a"), 1)
            .eq_const(("r", "a"), 2)
            .project(("r", "b"))
            .build()
            .unwrap();
        let a = AccessSchema::new(cat);
        assert_eq!(min_dq_bound_exact(&q, &a, 20), Some(0));
        assert_eq!(is_effectively_m_bounded(&q, &a, 0, 20), Some(true));
    }

    #[test]
    fn fetch_any_atoms_cost_one() {
        let cat = Catalog::from_names(&[("s1", &["a", "b"]), ("s2", &["c", "d"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("s1", &["a"], &["b"], 3).unwrap();
        let q = SpcQuery::builder(cat, "e")
            .atom("s1", "s1")
            .atom("s2", "s2")
            .eq_const(("s1", "a"), 1)
            .project(("s1", "b"))
            .build()
            .unwrap();
        assert_eq!(min_dq_bound_exact(&q, &a, 20), Some(4)); // 3 + 1
        assert_eq!(min_dq_bound_greedy(&q, &a), Some(4));
    }
}
