//! String interning: the boundary between the public [`Value`] type and
//! the data plane's fixed-width [`Cell`] encoding.
//!
//! A [`SymbolTable`] maps strings (and the rare integer too large to store
//! inline in a cell) to dense `u32` ids. Interning happens once, at load
//! time; from then on every equality test, hash, and index probe works on
//! `u64` words. Decoding is an array lookup.
//!
//! Encoding comes in two flavours with different mutability:
//!
//! * [`SymbolTable::encode`] (`&mut self`) — the **load path**: interns
//!   unseen strings.
//! * [`SymbolTable::try_encode`] (`&self`) — the **query path**: a constant
//!   whose string was never interned cannot match any stored tuple, so the
//!   encode can simply report `None` and the caller short-circuits to an
//!   empty result. This is what lets executors run against an immutable
//!   database reference.

use crate::fx::FxHashMap;
use crate::row::{Cell, CellKind, RowBuf};
use crate::value::Value;
use std::sync::Arc;

/// An interned string id (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// Interns strings and wide integers; encodes/decodes [`Value`]s to
/// [`Cell`]s losslessly.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    strings: Vec<Arc<str>>,
    by_string: FxHashMap<Arc<str>, u32>,
    wide_ints: Vec<i64>,
    by_wide_int: FxHashMap<i64, u32>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns `s`, returning its id (stable across repeat calls).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&id) = self.by_string.get(s) {
            return Sym(id);
        }
        let id = u32::try_from(self.strings.len()).expect("symbol table overflow");
        let arc: Arc<str> = Arc::from(s);
        self.strings.push(Arc::clone(&arc));
        self.by_string.insert(arc, id);
        Sym(id)
    }

    /// The id of an already-interned string.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.by_string.get(s).map(|&id| Sym(id))
    }

    /// The string behind `sym`.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// The interned strings in id order (`Sym(0)`, `Sym(1)`, …): the dump
    /// the durability layer snapshots. Re-interning them in this order into
    /// an empty table reproduces identical ids.
    pub fn strings(&self) -> impl Iterator<Item = &str> + '_ {
        self.strings.iter().map(|s| s.as_ref())
    }

    /// The wide-int pool in index order (see [`Self::strings`] for the
    /// replay contract).
    pub fn wide_ints(&self) -> &[i64] {
        &self.wide_ints
    }

    /// Number of pooled wide integers.
    pub fn num_wide_ints(&self) -> usize {
        self.wide_ints.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty() && self.wide_ints.is_empty()
    }

    fn intern_wide(&mut self, i: i64) -> u32 {
        if let Some(&ix) = self.by_wide_int.get(&i) {
            return ix;
        }
        let ix = u32::try_from(self.wide_ints.len()).expect("wide-int pool overflow");
        self.wide_ints.push(i);
        self.by_wide_int.insert(i, ix);
        ix
    }

    /// Encodes `v`, interning new strings (load path).
    pub fn encode(&mut self, v: &Value) -> Cell {
        match v {
            Value::Null => Cell::NULL,
            Value::Int(i) => {
                Cell::from_small_int(*i).unwrap_or_else(|| Cell::from_wide(self.intern_wide(*i)))
            }
            Value::Str(s) => Cell::from_sym(self.intern(s)),
        }
    }

    /// Encodes `v` without interning (query path). `None` means `v` cannot
    /// equal any value this table has ever encoded.
    pub fn try_encode(&self, v: &Value) -> Option<Cell> {
        match v {
            Value::Null => Some(Cell::NULL),
            Value::Int(i) => match Cell::from_small_int(*i) {
                Some(c) => Some(c),
                None => self.by_wide_int.get(i).map(|&ix| Cell::from_wide(ix)),
            },
            Value::Str(s) => self.lookup(s).map(Cell::from_sym),
        }
    }

    /// Decodes one cell back to a [`Value`].
    pub fn decode(&self, cell: Cell) -> Value {
        match cell.kind() {
            CellKind::Null => Value::Null,
            CellKind::SmallInt(i) => Value::Int(i),
            CellKind::Sym(sym) => Value::Str(Arc::clone(&self.strings[sym.0 as usize])),
            CellKind::WideInt(ix) => Value::Int(self.wide_ints[ix as usize]),
        }
    }

    /// Encodes a full row (load path).
    pub fn encode_row(&mut self, row: &[Value]) -> RowBuf {
        row.iter().map(|v| self.encode(v)).collect()
    }

    /// Encodes a probe key (query path); `None` if any component cannot
    /// match stored data.
    pub fn try_encode_row(&self, row: &[Value]) -> Option<RowBuf> {
        row.iter().map(|v| self.try_encode(v)).collect()
    }

    /// Decodes a full row.
    pub fn decode_row(&self, cells: &[Cell]) -> Vec<Value> {
        cells.iter().map(|&c| self.decode(c)).collect()
    }

    /// Batch query-path encode: appends cells for the longest prefix of
    /// `vals` whose values are all already interned and returns its length
    /// (`vals.len()` when the whole batch hit). The bulk-ingest fast path
    /// runs this once per chunk — one read-only symbol-table pass instead
    /// of a per-cell encode/intern decision — and falls back to
    /// [`Self::encode_into`] only for the suffix holding unseen values.
    pub fn try_encode_into(&self, vals: &[Value], out: &mut Vec<Cell>) -> usize {
        out.reserve(vals.len());
        for (i, v) in vals.iter().enumerate() {
            match self.try_encode(v) {
                Some(c) => out.push(c),
                None => return i,
            }
        }
        vals.len()
    }

    /// Batch load-path encode: appends one cell per value, interning
    /// unseen strings and wide integers.
    pub fn encode_into(&mut self, vals: &[Value], out: &mut Vec<Cell>) {
        out.reserve(vals.len());
        for v in vals {
            let c = self.encode(v);
            out.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("hello");
        let b = t.intern("world");
        let a2 = t.intern("hello");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "hello");
        assert_eq!(t.resolve(b), "world");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn value_roundtrip_all_shapes() {
        let mut t = SymbolTable::new();
        let values = [
            Value::Null,
            Value::int(0),
            Value::int(-7),
            Value::int(1 << 59),
            Value::int(i64::MAX),
            Value::int(i64::MIN),
            Value::str("abc"),
            Value::str(""),
        ];
        for v in &values {
            let cell = t.encode(v);
            assert_eq!(&t.decode(cell), v, "{v}");
        }
        // Distinct values encode to distinct cells.
        let cells: Vec<Cell> = values.iter().map(|v| t.encode(v)).collect();
        for i in 0..cells.len() {
            for j in i + 1..cells.len() {
                assert_ne!(cells[i], cells[j], "{} vs {}", values[i], values[j]);
            }
        }
    }

    #[test]
    fn try_encode_misses_unseen_strings_and_wide_ints() {
        let mut t = SymbolTable::new();
        t.encode(&Value::str("known"));
        t.encode(&Value::int(i64::MAX));
        assert!(t.try_encode(&Value::str("known")).is_some());
        assert!(t.try_encode(&Value::str("unknown")).is_none());
        assert!(t.try_encode(&Value::int(i64::MAX)).is_some());
        assert!(t.try_encode(&Value::int(i64::MAX - 1)).is_none());
        // Small ints and Null always encode.
        assert!(t.try_encode(&Value::int(12)).is_some());
        assert!(t.try_encode(&Value::Null).is_some());
    }

    #[test]
    fn try_encode_agrees_with_encode() {
        let mut t = SymbolTable::new();
        for v in [
            Value::str("x"),
            Value::int(5),
            Value::int(i64::MIN),
            Value::Null,
        ] {
            let loaded = t.encode(&v);
            assert_eq!(t.try_encode(&v), Some(loaded));
        }
    }

    #[test]
    fn id_order_dump_replays_to_identical_ids() {
        let mut t = SymbolTable::new();
        t.encode_row(&[Value::str("b"), Value::str("a"), Value::int(i64::MAX)]);
        t.encode(&Value::int(i64::MIN));
        // Re-intern the dump in id order into a fresh table: ids must match.
        let mut replayed = SymbolTable::new();
        for s in t.strings() {
            replayed.intern(s);
        }
        for &w in t.wide_ints() {
            replayed.encode(&Value::int(w));
        }
        assert_eq!(replayed.len(), t.len());
        assert_eq!(replayed.num_wide_ints(), t.num_wide_ints());
        for (v, cell) in [
            (Value::str("b"), t.try_encode(&Value::str("b")).unwrap()),
            (
                Value::int(i64::MAX),
                t.try_encode(&Value::int(i64::MAX)).unwrap(),
            ),
        ] {
            assert_eq!(replayed.try_encode(&v), Some(cell));
        }
    }

    #[test]
    fn batch_encode_matches_per_cell_encode() {
        let mut t = SymbolTable::new();
        let vals = vec![
            Value::int(1),
            Value::str("a"),
            Value::Null,
            Value::int(i64::MAX),
            Value::str("b"),
        ];
        let mut batch = Vec::new();
        // Nothing interned yet: the read-only pass stops at the first miss.
        assert_eq!(t.try_encode_into(&vals, &mut batch), 1);
        t.encode_into(&vals[1..], &mut batch);
        let per_cell: Vec<Cell> = vals.iter().map(|v| t.encode(v)).collect();
        assert_eq!(batch, per_cell);
        // Second batch over the same values: one pass, full hit.
        let mut again = Vec::new();
        assert_eq!(t.try_encode_into(&vals, &mut again), vals.len());
        assert_eq!(again, per_cell);
    }

    #[test]
    fn row_roundtrip() {
        let mut t = SymbolTable::new();
        let row = vec![Value::str("p1"), Value::int(3), Value::Null];
        let cells = t.encode_row(&row);
        assert_eq!(t.decode_row(&cells), row);
        assert_eq!(t.try_encode_row(&row).unwrap(), cells);
        assert!(t
            .try_encode_row(&[Value::str("p1"), Value::str("nope")])
            .is_none());
    }
}
