//! Epoch snapshots: single-writer / multi-reader access to the database.
//!
//! Readers call [`SharedDb::snapshot`] and get an `Arc<Database>` — an
//! immutable view they can execute plans against for as long as they like,
//! off the lock. Writers go through [`SharedDb::write`], which
//! copy-on-writes the underlying database (`Arc::make_mut`) while readers
//! hold older snapshots, then publishes the new `Arc`. The database's own
//! epoch counter (advanced by every mutation) lets the layers above detect
//! staleness by comparing a single integer.
//!
//! The trade-off is explicit: reads are wait-free after a brief read-lock
//! to clone the `Arc`; a write that races outstanding snapshots pays a full
//! database clone. For the serving workloads this crate targets — heavy
//! read traffic, occasional inserts — that is the right corner. Writers
//! that batch (see `Server::bulk_update`) amortize the copy.

use bcq_storage::Database;
use std::sync::{Arc, RwLock};

/// A shared, snapshot-on-read / copy-on-write database handle.
#[derive(Debug)]
pub struct SharedDb {
    inner: RwLock<Arc<Database>>,
}

impl SharedDb {
    /// Wraps a database for shared access.
    pub fn new(db: Database) -> Self {
        SharedDb {
            inner: RwLock::new(Arc::new(db)),
        }
    }

    /// An immutable snapshot of the current state. Cheap (`Arc` clone);
    /// the snapshot stays valid — and unchanged — however many writes
    /// happen after it is taken.
    pub fn snapshot(&self) -> Arc<Database> {
        Arc::clone(&self.inner.read().expect("database lock poisoned"))
    }

    /// The current epoch (shorthand for `snapshot().epoch()` without
    /// cloning the `Arc`).
    pub fn epoch(&self) -> u64 {
        self.inner.read().expect("database lock poisoned").epoch()
    }

    /// Runs `f` against the database with exclusive write access,
    /// copy-on-writing if any snapshot is still outstanding. Returns `f`'s
    /// result. All mutations advance the database epoch (enforced by
    /// [`Database`] itself), so cached layers observe the write.
    pub fn write<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut guard = self.inner.write().expect("database lock poisoned");
        f(Arc::make_mut(&mut guard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcq_core::prelude::{Catalog, Value};

    fn db() -> Database {
        Database::new(Catalog::from_names(&[("r", &["a", "b"])]).unwrap())
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let shared = SharedDb::new(db());
        shared.write(|d| d.insert("r", &[Value::int(1), Value::int(2)]).unwrap());
        let snap = shared.snapshot();
        let e = snap.epoch();
        assert_eq!(snap.total_tuples(), 1);

        shared.write(|d| d.insert("r", &[Value::int(3), Value::int(4)]).unwrap());
        // The old snapshot is frozen; the new one sees the write.
        assert_eq!(snap.total_tuples(), 1);
        assert_eq!(snap.epoch(), e);
        assert_eq!(shared.snapshot().total_tuples(), 2);
        assert!(shared.epoch() > e);
    }

    #[test]
    fn concurrent_readers_see_consistent_states() {
        let shared = Arc::new(SharedDb::new(db()));
        let mut handles = Vec::new();
        for t in 0..4 {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    if t == 0 {
                        shared.write(|d| d.insert("r", &[Value::int(i), Value::int(i)]).unwrap());
                    } else {
                        let snap = shared.snapshot();
                        // A snapshot's tuple count and epoch never change
                        // underneath the reader.
                        let (n, e) = (snap.total_tuples(), snap.epoch());
                        std::thread::yield_now();
                        assert_eq!(snap.total_tuples(), n);
                        assert_eq!(snap.epoch(), e);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.snapshot().total_tuples(), 50);
    }
}
