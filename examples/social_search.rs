//! Parameterized social search: the paper's Q1 workflow (Examples 1(2)
//! and 9).
//!
//! `Q1` is a *template*: the album and user are `?placeholders` to be filled
//! in through a Web form. The template itself is not even bounded — but a
//! **dominating parameter** analysis (`findDPh`, Section 4.3) identifies the
//! minimum set of parameters whose instantiation makes it effectively
//! bounded, so the application can require exactly those form fields.
//!
//! Run with: `cargo run --release --example social_search`

use bounded_cq::core::dominating::{find_dp, find_dp_exact, DominatingConfig};
use bounded_cq::prelude::*;
use std::collections::BTreeMap;

fn main() -> Result<()> {
    let catalog = Catalog::from_names(&[
        ("in_album", &["photo_id", "album_id"]),
        ("friends", &["user_id", "friend_id"]),
        ("tagging", &["photo_id", "tagger_id", "taggee_id"]),
    ])?;
    let mut a0 = AccessSchema::new(catalog.clone());
    a0.add("in_album", &["album_id"], &["photo_id"], 1000)?;
    a0.add("friends", &["user_id"], &["friend_id"], 5000)?;
    a0.add("tagging", &["photo_id", "taggee_id"], &["tagger_id"], 1)?;

    // Q1: same as Q0, but album and user are unbound placeholders.
    let q1 = SpcQuery::builder(catalog.clone(), "Q1")
        .atom("in_album", "ia")
        .atom("friends", "f")
        .atom("tagging", "t")
        .eq_param(("ia", "album_id"), "aid")
        .eq_param(("f", "user_id"), "uid")
        .eq(("ia", "photo_id"), ("t", "photo_id"))
        .eq(("t", "tagger_id"), ("f", "friend_id"))
        .eq(("t", "taggee_id"), ("f", "user_id"))
        .project(("ia", "photo_id"))
        .build()?;
    println!("template: {q1}\n");

    // The raw template is neither bounded nor effectively bounded.
    println!("bounded under A0?            {}", bcheck(&q1, &a0).bounded);
    println!(
        "effectively bounded under A0? {}",
        ebcheck(&q1, &a0).effectively_bounded
    );

    // findDPh: which parameters must the form require? (Example 9 uses
    // α = 3/7.)
    let dp = find_dp(&q1, &a0, DominatingConfig::with_alpha(3.0 / 7.0))
        .expect("Q1 has dominating parameters under A0");
    let names: Vec<String> = dp.attrs.iter().map(|a| q1.attr_name(*a)).collect();
    println!(
        "\nfindDPh: instantiate X_P = {{{}}} (|X_P|/#params = {:.2})",
        names.join(", "),
        dp.ratio
    );

    // The exact (exponential) solver can do one better by exploiting
    // Σ_Q-equalities — Theorem 7 says minimality is NPO-complete, so the
    // heuristic settles for safe.
    let exact = find_dp_exact(&q1, &a0, DominatingConfig::default(), 16)
        .expect("exact search succeeds on this small template");
    let exact_names: Vec<String> = exact.attrs.iter().map(|a| q1.attr_name(*a)).collect();
    println!("exact minimum:            {{{}}}", exact_names.join(", "));

    // The user submits the form: instantiate and evaluate.
    let mut binding = BTreeMap::new();
    binding.insert("aid".to_string(), Value::str("a0"));
    binding.insert("uid".to_string(), Value::str("u0"));
    let ground = q1.instantiate(&binding);
    assert!(ebcheck(&ground, &a0).effectively_bounded);
    let plan = qplan(&ground, &a0)?;
    println!(
        "\ninstantiated plan fetches at most {} tuples:",
        plan.cost_bound()
    );
    print!("{plan}");

    // Tiny database, same as the quickstart.
    let mut db = Database::new(catalog);
    db.insert("in_album", &[Value::str("p1"), Value::str("a0")])?;
    db.insert("friends", &[Value::str("u0"), Value::str("u1")])?;
    db.insert(
        "tagging",
        &[Value::str("p1"), Value::str("u1"), Value::str("u0")],
    )?;
    db.build_indexes(&a0);
    let out = eval_dq(&db, &plan, &a0)?;
    println!("\nanswer for (a0, u0): {}", out.result);
    Ok(())
}
