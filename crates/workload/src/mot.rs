//! MOT — the Ministry-of-Transport vehicle-test dataset of Section 6.
//!
//! The paper joins the five anonymised MOT tables into **one table of
//! 36 attributes** (16.2 GB, 55 M tuples) with **27 access constraints**.
//! This module generates a schema-faithful synthetic instance (36
//! attributes, 27 constraints, constraints enforced by construction). The
//! single-relation shape makes every multi-atom query a *self-join* through
//! renamings — e.g. "a failed test followed by a pass of the same vehicle"
//! — exercising the renaming machinery of SPC queries.
//!
//! Deterministic structure: each vehicle has one test per year 2009–2014
//! (so `(vehicle_id, test_year)` is nearly a key), stations are balanced
//! per year, `postcode_area`/`station_district` are functions of
//! `station_id`, and `model` determines `make`.

use crate::gen::{row_rng, scaled, spread2};
use crate::source::{self, rows, RowSource};
use crate::spec::{Dataset, WorkloadQuery};
use bcq_core::prelude::*;
use bcq_storage::Database;
use std::sync::Arc;

const N_STATIONS_BASE: u64 = 3_000;
const N_STATIONS_MIN: u64 = 40;
const N_MAKES: u64 = 120;
const YEARS: u64 = 6; // 2009..=2014

/// The single 36-attribute MOT catalog.
pub fn catalog() -> Arc<Catalog> {
    Catalog::from_names(&[(
        "mot_test",
        &[
            "test_id",
            "vehicle_id",
            "test_day",
            "test_month",
            "test_year",
            "test_class",
            "test_type",
            "result",
            "odometer_band",
            "colour",
            "fuel",
            "cc_band",
            "make",
            "model",
            "first_use_year",
            "postcode_area",
            "station_id",
            "station_district",
            "mileage_band",
            "age_band",
            "item1",
            "item2",
            "item3",
            "item4",
            "item5",
            "item6",
            "item7",
            "item8",
            "item9",
            "item10",
            "advisories_n",
            "dangerous_n",
            "retest_flag",
            "seats",
            "emissions_band",
            "brake_band",
        ],
    )])
    .expect("static schema is valid")
}

/// The 27 MOT access constraints (first 12 = `‖A‖` sweep core).
pub fn access_schema() -> AccessSchema {
    let mut a = AccessSchema::new(catalog());
    // Key: test_id -> everything else.
    {
        let cat_ = catalog();
        let rel = cat_.relation(RelId(0));
        let rest: Vec<String> = rel
            .attributes()
            .iter()
            .filter(|s| s.as_str() != "test_id")
            .cloned()
            .collect();
        let rest_refs: Vec<&str> = rest.iter().map(String::as_str).collect();
        a.add("mot_test", &["test_id"], &rest_refs, 1).unwrap();
    }
    let mut add = |x: &[&str], y: &[&str], n: u64| {
        a.add("mot_test", x, y, n).expect("static constraint");
    };
    // --- Core (2..=12) --------------------------------------------------
    add(&["vehicle_id"], &["test_id"], 8);
    add(&["vehicle_id", "test_year"], &["test_id"], 4);
    add(&["station_id"], &["test_id"], 512);
    add(&["station_id", "test_year"], &["test_id"], 64);
    add(&["postcode_area"], &["station_id"], 64);
    add(&["station_id"], &["postcode_area"], 1); // FD
    add(&["make"], &["model"], 8);
    add(&["model"], &["make"], 1); // FD
    add(&[], &["test_month"], 12);
    add(&[], &["result"], 4);
    add(&[], &["test_year"], 6);
    // --- Upgrades (13..=20) ----------------------------------------------
    add(&["vehicle_id", "result"], &["test_id"], 8);
    add(&["station_id"], &["station_district"], 1); // FD
    add(&[], &["fuel"], 9);
    add(&[], &["test_class"], 7);
    add(&[], &["colour"], 20);
    add(&[], &["cc_band"], 12);
    add(&[], &["age_band"], 16);
    add(&[], &["odometer_band"], 16);
    // --- Rest (21..=27) ---------------------------------------------------
    add(&[], &["mileage_band"], 16);
    add(&[], &["retest_flag"], 2);
    add(&[], &["test_type"], 5);
    add(&[], &["seats"], 8);
    add(&[], &["emissions_band"], 8);
    add(&[], &["brake_band"], 8);
    add(&[], &["dangerous_n"], 3);
    a
}

/// The single MOT table as a streaming [`RowSource`]: test `i` is a pure
/// function of `(scale, seed, i)` (one test per vehicle-year, balanced
/// stations, FDs by arithmetic; unconstrained attributes from
/// [`row_rng`]), so any row range can be generated independently.
pub fn sources(scale: f64, seed: u64) -> Vec<Box<dyn RowSource>> {
    assert!(
        (0.0..=2.0).contains(&scale),
        "MOT constraints are calibrated for scale <= 2.0"
    );
    let tests = scaled(200_000, scale, 6_000);
    let vehicles = (tests / YEARS).max(1_000);
    let n_stations = scaled(N_STATIONS_BASE, scale, N_STATIONS_MIN);

    vec![rows(RelId(0), 36, tests, move |i, row| {
        let mut r = row_rng(seed, 21, i);
        let vehicle = i % vehicles;
        let year_idx = (i / vehicles) % YEARS; // one test per vehicle-year
        let station = spread2(i, n_stations);
        let make = spread2(vehicle, N_MAKES);
        let model = make * 8 + vehicle % 8; // FD: model -> make
        row.extend([
            Value::Int(i as i64),
            Value::Int(vehicle as i64),
            Value::Int(r.cat(28) + 1),
            Value::Int(r.cat(12)),
            Value::Int(2009 + year_idx as i64),
            Value::Int(r.cat(7)),
            Value::Int(r.cat(5)),
            Value::Int(r.cat(4)),
            Value::Int(r.cat(16)),
            Value::Int(r.cat(20)),
            Value::Int(r.cat(9)),
            Value::Int(r.cat(12)),
            Value::Int(make as i64),
            Value::Int(model as i64),
            Value::Int(1990 + (vehicle % 24) as i64),
            Value::Int((station % 120) as i64), // FD: station -> postcode
            Value::Int(station as i64),
            Value::Int((station % 350) as i64), // FD: station -> district
            Value::Int(r.cat(16)),
            Value::Int(r.cat(16)),
            Value::Int(r.cat(12)),
            Value::Int(r.cat(12)),
            Value::Int(r.cat(12)),
            Value::Int(r.cat(12)),
            Value::Int(r.cat(12)),
            Value::Int(r.cat(12)),
            Value::Int(r.cat(12)),
            Value::Int(r.cat(12)),
            Value::Int(r.cat(12)),
            Value::Int(r.cat(12)),
            Value::Int(r.cat(6)),
            Value::Int(r.cat(3)),
            Value::Int(r.cat(2)),
            Value::Int(r.cat(8)),
            Value::Int(r.cat(8)),
            Value::Int(r.cat(8)),
        ]);
    })]
}

/// Generates a MOT instance at `scale` by streaming [`sources`] through
/// the bulk-ingest fast path (constraints hold for `scale ≤ 2.0`).
pub fn generate(scale: f64, seed: u64) -> Database {
    let mut db = Database::new(catalog());
    for s in sources(scale, seed) {
        source::load(&mut db, s.as_ref());
    }
    db
}

/// The 15 MOT workload queries (12 effectively bounded, 3 not).
pub fn queries() -> Vec<WorkloadQuery> {
    let c = catalog;
    let q = |name: &str| SpcQuery::builder(c(), name);
    let mut out = Vec::new();
    let mut push = |query: SpcQuery, eb: bool| out.push(WorkloadQuery::new(query, eb));

    // M01: one vehicle's passing tests in one year (prod 0, sel 4).
    push(
        q("mot_vehicle_year")
            .atom("mot_test", "t")
            .eq_const(("t", "vehicle_id"), 500)
            .eq_const(("t", "test_year"), 2013)
            .eq_const(("t", "result"), 1)
            .eq_const(("t", "fuel"), 2)
            .project(("t", "test_id"))
            .build()
            .unwrap(),
        true,
    );
    // M02: a station's class-4 passes in one year (prod 0, sel 4).
    push(
        q("mot_station_year")
            .atom("mot_test", "t")
            .eq_const(("t", "station_id"), 25)
            .eq_const(("t", "test_year"), 2013)
            .eq_const(("t", "test_class"), 4)
            .eq_const(("t", "result"), 1)
            .project(("t", "test_id"))
            .build()
            .unwrap(),
        true,
    );
    // M03: profile scan — NOT effectively bounded (prod 0, sel 5).
    push(
        q("mot_colour_scan")
            .atom("mot_test", "t")
            .eq_const(("t", "colour"), 3)
            .eq_const(("t", "fuel"), 2)
            .eq_const(("t", "test_class"), 4)
            .eq_const(("t", "result"), 0)
            .eq_const(("t", "test_month"), 6)
            .project(("t", "test_id"))
            .build()
            .unwrap(),
        false,
    );
    // M04: fail-then-pass pairs for one vehicle (prod 1, sel 4).
    push(
        q("mot_retest_pair")
            .atom("mot_test", "t1")
            .atom("mot_test", "t2")
            .eq_const(("t1", "vehicle_id"), 500)
            .eq_const(("t1", "result"), 0)
            .eq(("t2", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t2", "result"), 1)
            .project(("t1", "test_id"))
            .project(("t2", "test_id"))
            .build()
            .unwrap(),
        true,
    );
    // M05: same-station same-year pairs (prod 1, sel 5).
    push(
        q("mot_station_pairs")
            .atom("mot_test", "t1")
            .atom("mot_test", "t2")
            .eq_const(("t1", "station_id"), 25)
            .eq_const(("t1", "test_year"), 2013)
            .eq_const(("t1", "result"), 0)
            .eq(("t2", "station_id"), ("t1", "station_id"))
            .eq(("t2", "test_year"), ("t1", "test_year"))
            .project(("t1", "test_id"))
            .project(("t2", "test_id"))
            .build()
            .unwrap(),
        true,
    );
    // M06: three-test history of a vehicle (prod 2, sel 6).
    push(
        q("mot_history3")
            .atom("mot_test", "t1")
            .atom("mot_test", "t2")
            .atom("mot_test", "t3")
            .eq_const(("t1", "vehicle_id"), 500)
            .eq_const(("t1", "test_year"), 2013)
            .eq(("t2", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t2", "result"), 0)
            .eq(("t3", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t3", "result"), 1)
            .project(("t1", "test_id"))
            .project(("t2", "test_id"))
            .project(("t3", "test_id"))
            .build()
            .unwrap(),
        true,
    );
    // M07: failure details followed by a pass (prod 1, sel 7).
    push(
        q("mot_failure_detail")
            .atom("mot_test", "t1")
            .atom("mot_test", "t2")
            .eq_const(("t1", "vehicle_id"), 500)
            .eq_const(("t1", "result"), 0)
            .eq_const(("t1", "item1"), 3)
            .eq_const(("t1", "dangerous_n"), 1)
            .eq_const(("t1", "test_month"), 6)
            .eq(("t2", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t2", "result"), 1)
            .project(("t1", "test_id"))
            .project(("t2", "test_id"))
            .build()
            .unwrap(),
        true,
    );
    // M08: maximally selective point query (prod 0, sel 8).
    push(
        q("mot_point")
            .atom("mot_test", "t")
            .eq_const(("t", "vehicle_id"), 500)
            .eq_const(("t", "test_year"), 2013)
            .eq_const(("t", "test_month"), 6)
            .eq_const(("t", "result"), 1)
            .eq_const(("t", "fuel"), 2)
            .eq_const(("t", "test_class"), 4)
            .eq_const(("t", "colour"), 3)
            .eq_const(("t", "retest_flag"), 0)
            .project(("t", "test_id"))
            .build()
            .unwrap(),
        true,
    );
    // M09: make/model/station hop — NOT effectively bounded (prod 2,
    // sel 5).
    push(
        q("mot_make_station")
            .atom("mot_test", "t1")
            .atom("mot_test", "t2")
            .atom("mot_test", "t3")
            .eq_const(("t1", "make"), 7)
            .eq_const(("t1", "fuel"), 2)
            .eq(("t2", "model"), ("t1", "model"))
            .eq(("t3", "station_id"), ("t2", "station_id"))
            .eq_const(("t3", "result"), 1)
            .project(("t3", "test_id"))
            .build()
            .unwrap(),
        false,
    );
    // M10: four-test ladder (prod 3, sel 8).
    push(
        q("mot_history4")
            .atom("mot_test", "t1")
            .atom("mot_test", "t2")
            .atom("mot_test", "t3")
            .atom("mot_test", "t4")
            .eq_const(("t1", "vehicle_id"), 500)
            .eq_const(("t1", "test_year"), 2013)
            .eq(("t2", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t2", "test_month"), 6)
            .eq(("t3", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t3", "result"), 0)
            .eq(("t4", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t4", "result"), 1)
            .project(("t1", "test_id"))
            .project(("t2", "test_id"))
            .project(("t3", "test_id"))
            .project(("t4", "test_id"))
            .build()
            .unwrap(),
        true,
    );
    // M11: five-way self-join (prod 4, sel 8).
    push(
        q("mot_history5")
            .atom("mot_test", "t1")
            .atom("mot_test", "t2")
            .atom("mot_test", "t3")
            .atom("mot_test", "t4")
            .atom("mot_test", "t5")
            .eq_const(("t1", "vehicle_id"), 500)
            .eq(("t2", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t2", "result"), 0)
            .eq(("t3", "vehicle_id"), ("t1", "vehicle_id"))
            .eq(("t4", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t4", "test_month"), 6)
            .eq(("t5", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t5", "fuel"), 2)
            .project(("t4", "test_id"))
            .project(("t5", "test_id"))
            .build()
            .unwrap(),
        true,
    );
    // M12: colour/class then same vehicle — NOT effectively bounded
    // (prod 1, sel 4).
    push(
        q("mot_colour_vehicle")
            .atom("mot_test", "t1")
            .atom("mot_test", "t2")
            .eq_const(("t1", "colour"), 3)
            .eq_const(("t1", "test_class"), 4)
            .eq(("t2", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t2", "result"), 0)
            .project(("t2", "test_id"))
            .build()
            .unwrap(),
        false,
    );
    // M13: station month snapshot (prod 0, sel 4).
    push(
        q("mot_station_month")
            .atom("mot_test", "t")
            .eq_const(("t", "station_id"), 25)
            .eq_const(("t", "test_year"), 2013)
            .eq_const(("t", "test_month"), 6)
            .eq_const(("t", "retest_flag"), 0)
            .project(("t", "test_id"))
            .build()
            .unwrap(),
        true,
    );
    // M14: vehicle → its test's station → that station's passes (prod 2,
    // sel 7).
    push(
        q("mot_station_hop")
            .atom("mot_test", "t1")
            .atom("mot_test", "t2")
            .atom("mot_test", "t3")
            .eq_const(("t1", "vehicle_id"), 500)
            .eq_const(("t1", "result"), 0)
            .eq_const(("t1", "test_year"), 2013)
            .eq(("t2", "vehicle_id"), ("t1", "vehicle_id"))
            .eq(("t3", "station_id"), ("t2", "station_id"))
            .eq(("t3", "test_year"), ("t2", "test_year"))
            .eq_const(("t3", "result"), 1)
            .project(("t1", "test_id"))
            .project(("t2", "test_id"))
            .project(("t3", "test_id"))
            .build()
            .unwrap(),
        true,
    );
    // M15: Boolean — did vehicle 500 fail in 2013? (prod 1, sel 4).
    push(
        q("mot_bool_failed")
            .atom("mot_test", "t1")
            .atom("mot_test", "t2")
            .eq_const(("t1", "vehicle_id"), 500)
            .eq_const(("t1", "test_year"), 2013)
            .eq(("t2", "vehicle_id"), ("t1", "vehicle_id"))
            .eq_const(("t2", "result"), 0)
            .build()
            .unwrap(),
        true,
    );

    out
}

/// The MOT dataset bundle.
pub fn dataset() -> Dataset {
    Dataset {
        name: "MOT",
        catalog: catalog(),
        access: access_schema(),
        queries: queries(),
        generate: |scale, seed| generate(scale, seed),
        sources: |scale, seed| sources(scale, seed),
        default_scale: 1.0,
        scale_ladder: &[0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcq_core::ebcheck::ebcheck;
    use bcq_storage::validate;

    #[test]
    fn schema_matches_paper_shape() {
        let c = catalog();
        assert_eq!(c.len(), 1, "one joined table");
        assert_eq!(c.total_attributes(), 36, "36 attributes");
    }

    #[test]
    fn twenty_seven_constraints() {
        assert_eq!(access_schema().len(), 27);
    }

    #[test]
    fn generated_data_satisfies_access_schema() {
        let a = access_schema();
        let mut db = generate(0.05, 42);
        let violations = validate(&mut db, &a);
        assert!(violations.is_empty(), "first: {}", violations[0]);
    }

    #[test]
    fn effective_boundedness_matches_expectations() {
        let a = access_schema();
        for wq in queries() {
            let report = ebcheck(&wq.query, &a);
            assert_eq!(
                report.effectively_bounded,
                wq.expect_effectively_bounded,
                "query {}: {:?}",
                wq.query.name(),
                report.first_failure(&wq.query)
            );
        }
    }

    #[test]
    fn twelve_of_fifteen_effectively_bounded() {
        let n = queries()
            .iter()
            .filter(|w| w.expect_effectively_bounded)
            .count();
        assert_eq!(n, 12);
    }

    #[test]
    fn sel_and_prod_ranges_match_paper() {
        let qs = queries();
        assert_eq!(qs.len(), 15);
        for w in &qs {
            assert!(
                (4..=8).contains(&w.query.num_sel()),
                "{}: #-sel {}",
                w.query.name(),
                w.query.num_sel()
            );
            assert!(w.query.num_prod() <= 4);
        }
        assert!(qs.iter().any(|w| w.query.num_prod() == 4));
    }

    #[test]
    fn hot_vehicle_has_2013_test() {
        let db = generate(0.05, 42);
        let hit = db
            .value_rows(RelId(0))
            .any(|r| r[1] == Value::Int(500) && r[4] == Value::Int(2013));
        assert!(hit, "vehicle 500 must have a 2013 test at every scale");
    }
}
