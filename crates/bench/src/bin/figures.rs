//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p bcq-bench --release --bin figures            # everything
//! cargo run -p bcq-bench --release --bin figures -- --panel 5a
//! cargo run -p bcq-bench --release --bin figures -- --table 1
//! cargo run -p bcq-bench --release --bin figures -- --headline
//! cargo run -p bcq-bench --release --bin figures -- --budget 300000
//! ```
//!
//! Panels map to the paper as: 5a–5d = TFACC (|D|, ‖A‖, #-sel, #-prod),
//! 5e–5h = MOT, 5i–5l = TPCH. Output is plain text, embedded verbatim in
//! EXPERIMENTS.md.

use bcq_bench::{
    acc_sweep, headline, prod_sweep, render_panel, render_table1, scale_sweep, sel_sweep, table1,
    DEFAULT_BUDGET,
};
use bcq_workload::{all_datasets, Dataset};

struct Args {
    panel: Option<String>,
    table: Option<String>,
    headline_only: bool,
    budget: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        panel: None,
        table: None,
        headline_only: false,
        budget: DEFAULT_BUDGET,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--panel" => args.panel = it.next(),
            "--table" => args.table = it.next(),
            "--headline" => args.headline_only = true,
            "--budget" => {
                args.budget = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--budget takes a number");
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: figures [--panel 5a..5l] [--table 1|2] [--headline] [--budget N]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn run_panel(ds: &Dataset, kind: char, letter: char, budget: u64) {
    let (title, rows) = match kind {
        'a' => (
            format!("Figure 5({letter}) {}: varying |D| (scale ladder)", ds.name),
            scale_sweep(ds, budget),
        ),
        'b' => (
            format!("Figure 5({letter}) {}: varying ||A|| (12..20)", ds.name),
            acc_sweep(ds, budget),
        ),
        'c' => (
            format!("Figure 5({letter}) {}: varying #-sel (4..8)", ds.name),
            sel_sweep(ds, budget),
        ),
        'd' => (
            format!("Figure 5({letter}) {}: varying #-prod (0..4)", ds.name),
            prod_sweep(ds, budget),
        ),
        _ => unreachable!(),
    };
    print!("{}", render_panel(&title, &rows));
    println!();
}

fn main() {
    let args = parse_args();
    let datasets = all_datasets();

    if args.headline_only {
        print!("{}", headline());
        return;
    }
    if let Some(t) = &args.table {
        match t.as_str() {
            "1" => {
                let rows: Vec<_> = datasets.iter().map(table1).collect();
                print!("{}", render_table1(&rows));
            }
            "2" => print_table2(),
            other => eprintln!("unknown table `{other}` (1 or 2)"),
        }
        return;
    }

    // Panels: 5a..5l — dataset index = (letter - 'a') / 4, sweep = % 4.
    if let Some(p) = &args.panel {
        let letter = p
            .trim_start_matches('5')
            .chars()
            .next()
            .expect("panel like 5a");
        let idx = (letter as u8 - b'a') as usize;
        assert!(idx < 12, "panels are 5a..5l");
        let ds = &datasets[idx / 4];
        let kind = (b'a' + (idx % 4) as u8) as char;
        run_panel(ds, kind, letter, args.budget);
        return;
    }

    // Everything.
    print!("{}", headline());
    println!();
    for (di, ds) in datasets.iter().enumerate() {
        for (ki, kind) in ['a', 'b', 'c', 'd'].into_iter().enumerate() {
            let letter = (b'a' + (di * 4 + ki) as u8) as char;
            run_panel(ds, kind, letter, args.budget);
        }
    }
    let rows: Vec<_> = datasets.iter().map(table1).collect();
    print!("{}", render_table1(&rows));
    println!();
    print_table2();
}

/// Table 2 is the complexity summary; it is established by the theorems and
/// exercised by the `ablations` bench (`ablation_complexity`), not measured
/// here.
fn print_table2() {
    println!("## Table 2: complexity bounds (validated by `cargo bench ablations`)");
    println!("  Bnd(Q,A)   O(|Q|(|A|+|Q|))   [Thm 5]   NP-complete when M is input [Thm 8]");
    println!("  EBnd(Q,A)  O(|Q|(|A|+|Q|))   [Thm 6]   NP-complete when M is input [Thm 8]");
    println!("  DP(Q,A)    NP-complete       [Thm 7]");
    println!("  MDP(Q,A)   NPO-complete      [Thm 7]");
}
