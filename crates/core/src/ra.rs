//! A heuristic effective-boundedness checker for **relational algebra** —
//! the paper's conclusion item (1).
//!
//! Deciding (effective) boundedness is undecidable for RA queries
//! (Fan–Geerts–Libkin, cited as \[20\]), so no characterization like
//! Theorems 3/4 exists. What the conclusion proposes — and this module
//! implements — is an efficient *sufficient* condition over the RA
//! operators layered on SPC:
//!
//! * `Spc(q)` — effectively bounded iff `EBCheck` says so (exact, Thm 4).
//! * `Union(l, r)` — effectively bounded if both sides are; the bounded
//!   sets union (`Σ M_i` adds).
//! * `Intersect(l, r)` — if one side is effectively bounded and the other
//!   is **membership-checkable**: given an answer tuple `t`, the Boolean
//!   query `q(Z = t)` is effectively bounded for every `t` — decided by
//!   seeding `EBCheck` with the projection classes, exactly the
//!   dominating-parameter machinery of Section 4.3.
//! * `Difference(l, r)` — if `l` is effectively bounded and `r` is
//!   membership-checkable (each candidate is probed boundedly).
//!
//! When the check fails the query may still be bounded — that is the
//! undecidability tax; the report says which subexpression failed and why.
//! Execution of certified expressions lives in `bcq_exec::ra`.

use crate::access::AccessSchema;
use crate::ebcheck::{ebcheck_with_seeds, EffectiveBoundednessReport};
use crate::error::{CoreError, Result};
use crate::query::SpcQuery;
use crate::sigma::Sigma;

/// A relational-algebra expression over SPC blocks.
///
/// All set operations require union-compatible sides (same projection
/// arity); attribute names need not match (positional semantics).
#[derive(Debug, Clone)]
pub enum RaExpr {
    /// An SPC block.
    Spc(SpcQuery),
    /// Set union.
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Set intersection.
    Intersect(Box<RaExpr>, Box<RaExpr>),
    /// Set difference (left minus right).
    Difference(Box<RaExpr>, Box<RaExpr>),
}

impl RaExpr {
    /// Builds a union.
    pub fn union(l: RaExpr, r: RaExpr) -> RaExpr {
        RaExpr::Union(Box::new(l), Box::new(r))
    }

    /// Builds an intersection.
    pub fn intersect(l: RaExpr, r: RaExpr) -> RaExpr {
        RaExpr::Intersect(Box::new(l), Box::new(r))
    }

    /// Builds a difference (`l \ r`).
    pub fn difference(l: RaExpr, r: RaExpr) -> RaExpr {
        RaExpr::Difference(Box::new(l), Box::new(r))
    }

    /// Output arity of the expression.
    pub fn arity(&self) -> usize {
        match self {
            RaExpr::Spc(q) => q.projection().len(),
            RaExpr::Union(l, _) | RaExpr::Intersect(l, _) | RaExpr::Difference(l, _) => l.arity(),
        }
    }

    /// Validates union-compatibility (equal arities through the tree).
    pub fn validate(&self) -> Result<()> {
        match self {
            RaExpr::Spc(_) => Ok(()),
            RaExpr::Union(l, r) | RaExpr::Intersect(l, r) | RaExpr::Difference(l, r) => {
                l.validate()?;
                r.validate()?;
                if l.arity() != r.arity() {
                    return Err(CoreError::Invalid(format!(
                        "set operation over arities {} and {}",
                        l.arity(),
                        r.arity()
                    )));
                }
                Ok(())
            }
        }
    }

    /// All SPC blocks, left to right (diagnostics / planning).
    pub fn blocks(&self) -> Vec<&SpcQuery> {
        match self {
            RaExpr::Spc(q) => vec![q],
            RaExpr::Union(l, r) | RaExpr::Intersect(l, r) | RaExpr::Difference(l, r) => {
                let mut out = l.blocks();
                out.extend(r.blocks());
                out
            }
        }
    }
}

/// How a subexpression participates in a certified bounded evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaRole {
    /// The subexpression's full answer is enumerated boundedly.
    Enumerable,
    /// Only per-tuple membership is probed boundedly.
    MembershipProbe,
}

/// Outcome of [`ra_effectively_bounded`].
#[derive(Debug, Clone)]
pub struct RaReport {
    /// `true` if the sufficient condition certifies the expression.
    pub effectively_bounded: bool,
    /// Human-readable reason for the first failure, if any.
    pub failure: Option<String>,
}

/// Is `q(Z = t)` effectively bounded for every tuple `t` — i.e. can answer
/// membership be verified boundedly? Decided by seeding the closure with
/// the projection classes (values never matter, only *which* attributes
/// are fixed).
pub fn membership_checkable(q: &SpcQuery, a: &AccessSchema) -> EffectiveBoundednessReport {
    let sigma = Sigma::build(q);
    let seeds: Vec<_> = q
        .projection()
        .iter()
        .map(|z| sigma.class_of_flat(q.flat_id(*z)))
        .collect();
    ebcheck_with_seeds(q, &sigma, a, &seeds)
}

/// The sufficient condition: certifies that `expr` can be evaluated by
/// accessing a bounded amount of data under `a`. A `false` verdict means
/// "not certified", not "unbounded" (undecidable in general for RA).
pub fn ra_effectively_bounded(expr: &RaExpr, a: &AccessSchema) -> RaReport {
    if let Err(e) = expr.validate() {
        return RaReport {
            effectively_bounded: false,
            failure: Some(e.to_string()),
        };
    }
    check(expr, a, RaRole::Enumerable)
}

fn check(expr: &RaExpr, a: &AccessSchema, role: RaRole) -> RaReport {
    let ok = RaReport {
        effectively_bounded: true,
        failure: None,
    };
    let fail = |msg: String| RaReport {
        effectively_bounded: false,
        failure: Some(msg),
    };
    match (expr, role) {
        (RaExpr::Spc(q), RaRole::Enumerable) => {
            if q.has_placeholders() {
                return fail(format!("`{}` has unbound placeholders", q.name()));
            }
            let r = crate::ebcheck::ebcheck(q, a);
            if r.effectively_bounded {
                ok
            } else {
                fail(format!(
                    "`{}` is not effectively bounded: {}",
                    q.name(),
                    r.first_failure(q).unwrap_or_default()
                ))
            }
        }
        (RaExpr::Spc(q), RaRole::MembershipProbe) => {
            if q.has_placeholders() {
                return fail(format!("`{}` has unbound placeholders", q.name()));
            }
            let r = membership_checkable(q, a);
            if r.effectively_bounded {
                ok
            } else {
                fail(format!(
                    "membership in `{}` is not boundedly checkable: {}",
                    q.name(),
                    r.first_failure(q).unwrap_or_default()
                ))
            }
        }
        (RaExpr::Union(l, r), role) => {
            // A union can be enumerated iff both sides can; a membership
            // probe distributes over both sides.
            let lr = check(l, a, role);
            if !lr.effectively_bounded {
                return lr;
            }
            check(r, a, role)
        }
        (RaExpr::Intersect(l, r), RaRole::Enumerable) => {
            // Enumerate the cheaper-certified side, probe the other.
            let l_enum = check(l, a, RaRole::Enumerable);
            if l_enum.effectively_bounded {
                let rp = check(r, a, RaRole::MembershipProbe);
                if rp.effectively_bounded {
                    return rp;
                }
            }
            let r_enum = check(r, a, RaRole::Enumerable);
            if r_enum.effectively_bounded {
                let lp = check(l, a, RaRole::MembershipProbe);
                if lp.effectively_bounded {
                    return lp;
                }
            }
            fail(
                "neither side of the intersection is enumerable with the other probe-checkable"
                    .to_string(),
            )
        }
        (RaExpr::Intersect(l, r), RaRole::MembershipProbe) => {
            let lr = check(l, a, RaRole::MembershipProbe);
            if !lr.effectively_bounded {
                return lr;
            }
            check(r, a, RaRole::MembershipProbe)
        }
        (RaExpr::Difference(l, r), role) => {
            // l \ r: enumerate (or probe) l; r is always only probed.
            let lr = check(l, a, role);
            if !lr.effectively_bounded {
                return lr;
            }
            check(r, a, RaRole::MembershipProbe)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::fixtures::{a0, photos_catalog, q0};

    /// π_{photo} σ_{album = x}(in_album) — effectively bounded under A0.
    fn album_photos(name: &str, album: &str) -> SpcQuery {
        SpcQuery::builder(photos_catalog(), name)
            .atom("in_album", "ia")
            .eq_const(("ia", "album_id"), album)
            .project(("ia", "photo_id"))
            .build()
            .unwrap()
    }

    /// π_{photo} σ_{taggee = u}(tagging) — NOT effectively bounded under A0
    /// (no index keyed within {photo, taggee}… actually (photo,taggee) is
    /// the index key, but taggee alone cannot enumerate photos).
    fn tagged_photos(name: &str, user: &str) -> SpcQuery {
        SpcQuery::builder(photos_catalog(), name)
            .atom("tagging", "t")
            .eq_const(("t", "taggee_id"), user)
            .project(("t", "photo_id"))
            .build()
            .unwrap()
    }

    #[test]
    fn spc_leaf_defers_to_ebcheck() {
        let a = a0();
        let e = RaExpr::Spc(q0());
        assert!(ra_effectively_bounded(&e, &a).effectively_bounded);
        let bad = RaExpr::Spc(tagged_photos("t", "u0"));
        let r = ra_effectively_bounded(&bad, &a);
        assert!(!r.effectively_bounded);
        assert!(r.failure.unwrap().contains("not effectively bounded"));
    }

    #[test]
    fn union_needs_both_sides() {
        let a = a0();
        let good = RaExpr::union(
            RaExpr::Spc(album_photos("a", "a0")),
            RaExpr::Spc(album_photos("b", "a1")),
        );
        assert!(ra_effectively_bounded(&good, &a).effectively_bounded);

        let half = RaExpr::union(
            RaExpr::Spc(album_photos("a", "a0")),
            RaExpr::Spc(tagged_photos("t", "u0")),
        );
        assert!(!ra_effectively_bounded(&half, &a).effectively_bounded);
    }

    #[test]
    fn difference_probes_the_right_side() {
        let a = a0();
        // photos in a0 that are NOT photos in which u0 is tagged:
        // the right side is not enumerable, but membership IS checkable —
        // given a photo, (photo, taggee) is the tagging index key.
        let e = RaExpr::difference(
            RaExpr::Spc(album_photos("a", "a0")),
            RaExpr::Spc(tagged_photos("t", "u0")),
        );
        let r = ra_effectively_bounded(&e, &a);
        assert!(r.effectively_bounded, "{:?}", r.failure);

        // Swapped, the left side must be enumerable — and is not.
        let swapped = RaExpr::difference(
            RaExpr::Spc(tagged_photos("t", "u0")),
            RaExpr::Spc(album_photos("a", "a0")),
        );
        assert!(!ra_effectively_bounded(&swapped, &a).effectively_bounded);
    }

    #[test]
    fn intersection_tries_both_orientations() {
        let a = a0();
        // enumerable ∩ probe-checkable: certified either way around.
        for (l, r) in [
            (album_photos("a", "a0"), tagged_photos("t", "u0")),
            (tagged_photos("t", "u0"), album_photos("a", "a0")),
        ] {
            let e = RaExpr::intersect(RaExpr::Spc(l), RaExpr::Spc(r));
            let rep = ra_effectively_bounded(&e, &a);
            assert!(rep.effectively_bounded, "{:?}", rep.failure);
        }
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let a = a0();
        let two_cols = SpcQuery::builder(photos_catalog(), "two")
            .atom("in_album", "ia")
            .eq_const(("ia", "album_id"), "a0")
            .project(("ia", "photo_id"))
            .project(("ia", "album_id"))
            .build()
            .unwrap();
        let e = RaExpr::union(RaExpr::Spc(album_photos("a", "a0")), RaExpr::Spc(two_cols));
        let r = ra_effectively_bounded(&e, &a);
        assert!(!r.effectively_bounded);
        assert!(r.failure.unwrap().contains("arities"));
    }

    #[test]
    fn nested_expressions() {
        let a = a0();
        // (a0 ∪ a1) \ tagged(u0): certified.
        let e = RaExpr::difference(
            RaExpr::union(
                RaExpr::Spc(album_photos("a", "a0")),
                RaExpr::Spc(album_photos("b", "a1")),
            ),
            RaExpr::Spc(tagged_photos("t", "u0")),
        );
        assert!(ra_effectively_bounded(&e, &a).effectively_bounded);
        assert_eq!(e.blocks().len(), 3);
        assert_eq!(e.arity(), 1);
    }

    #[test]
    fn membership_probe_through_difference() {
        let a = a0();
        // l \ (r1 \ r2) — the inner difference is itself only probed.
        let e = RaExpr::difference(
            RaExpr::Spc(album_photos("a", "a0")),
            RaExpr::difference(
                RaExpr::Spc(tagged_photos("t", "u0")),
                RaExpr::Spc(tagged_photos("t2", "u1")),
            ),
        );
        let r = ra_effectively_bounded(&e, &a);
        assert!(r.effectively_bounded, "{:?}", r.failure);
    }
}
