//! Prepared-query serving: the social-search workload behind a [`Server`].
//!
//! The Web-form story of Example 1(2), productionized: the parameterized
//! template `Q1(?aid, ?uid)` is prepared **once** — parse, `Σ_Q`,
//! `ebcheck`, `qplan` — and the compiled plan (with its parameter slots)
//! then serves a burst of form submissions from several threads
//! concurrently, each execution touching at most the plan's `Σ M_i`
//! tuples. Along the way: the plan cache takes the hits, an unbounded
//! report query is admitted onto the budgeted baseline, and a live insert
//! advances the epoch without disturbing the cached plan.
//!
//! Run with: `cargo run --release --example prepared_serving`

use bounded_cq::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

fn main() -> core::result::Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::from_names(&[
        ("in_album", &["photo_id", "album_id"]),
        ("friends", &["user_id", "friend_id"]),
        ("tagging", &["photo_id", "tagger_id", "taggee_id"]),
    ])?;
    let mut access = AccessSchema::new(catalog.clone());
    access.add("in_album", &["album_id"], &["photo_id"], 1000)?;
    access.add("friends", &["user_id"], &["friend_id"], 5000)?;
    access.add("tagging", &["photo_id", "taggee_id"], &["tagger_id"], 8)?;

    // A social database: 2k users, 8 friends each, photos + taggings.
    let users = 2_000i64;
    let mut db = Database::new(catalog.clone());
    for u in 0..users {
        for k in 0..8 {
            let f = (u * 31 + k * 7 + 1) % users;
            db.insert(
                "friends",
                &[Value::str(format!("u{u}")), Value::str(format!("u{f}"))],
            )?;
        }
    }
    for p in 0..users {
        db.insert(
            "in_album",
            &[
                Value::str(format!("p{p}")),
                Value::str(format!("a{}", p % 100)),
            ],
        )?;
        db.insert(
            "tagging",
            &[
                Value::str(format!("p{p}")),
                Value::str(format!("u{}", (p * 31 + 1) % users)),
                Value::str(format!("u{}", p % users)),
            ],
        )?;
    }

    let server = Arc::new(Server::new(db, access, ServerConfig::default()));
    println!(
        "server up: {} tuples, epoch {}\n",
        server.snapshot().total_tuples(),
        server.epoch()
    );

    // The social-search template: album and user arrive per request.
    let q1 = SpcQuery::builder(catalog.clone(), "Q1")
        .atom("in_album", "ia")
        .atom("friends", "f")
        .atom("tagging", "t")
        .eq_param(("ia", "album_id"), "aid")
        .eq_param(("f", "user_id"), "uid")
        .eq(("ia", "photo_id"), ("t", "photo_id"))
        .eq(("t", "tagger_id"), ("f", "friend_id"))
        .eq_param(("t", "taggee_id"), "uid")
        .project(("ia", "photo_id"))
        .build()?;

    // Prepare once: the expensive step.
    let prepared = server.prepare(&q1)?;
    println!(
        "prepared `{}`: lane={}, slots={:?}, |DQ| <= {}",
        q1.name(),
        prepared.query.lane(),
        prepared.query.param_slots(),
        prepared.query.cost_bound().unwrap()
    );

    // A burst of form submissions from 4 threads, all riding the one plan.
    let threads = 4;
    let requests_per_thread = 5_000;
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let server = Arc::clone(&server);
            let q1 = q1.clone();
            std::thread::spawn(move || {
                let mut session = server.session();
                let mut answers = 0usize;
                for i in 0..requests_per_thread {
                    let r = (t * 7919 + i * 13) as i64;
                    let mut bind = BTreeMap::new();
                    bind.insert("aid".to_string(), Value::str(format!("a{}", r % 100)));
                    bind.insert("uid".to_string(), Value::str(format!("u{}", r % 2_000)));
                    let resp = session.query(&q1, &bind).expect("bounded lane");
                    answers += resp.rows().map_or(0, |rows| rows.len());
                }
                (session.stats(), answers)
            })
        })
        .collect();
    let mut answers = 0usize;
    let mut tuples = 0u64;
    for h in handles {
        let (stats, a) = h.join().unwrap();
        answers += a;
        tuples += stats.tuples_fetched;
    }
    let elapsed = start.elapsed();
    let total = threads * requests_per_thread;
    println!(
        "\nburst: {total} requests on {threads} threads in {elapsed:?} \
         ({:.0} req/s), {answers} answers, {tuples} tuples fetched",
        total as f64 / elapsed.as_secs_f64()
    );

    // One compile, everything else cache hits.
    let cs = server.cache_stats();
    println!(
        "plan cache: {} hit(s), {} miss(es), {} eviction(s)",
        cs.hits, cs.misses, cs.evictions
    );

    // A live insert: the epoch advances, the cached plan keeps serving.
    let epoch_before = server.epoch();
    server.insert(
        "tagging",
        &[Value::str("p1"), Value::str("u32"), Value::str("u1")],
    )?;
    let mut session = server.session();
    let mut bind = BTreeMap::new();
    bind.insert("aid".to_string(), Value::str("a1"));
    bind.insert("uid".to_string(), Value::str("u1"));
    let resp = session.query(&q1, &bind)?;
    println!(
        "\nafter live insert: epoch {} -> {}, cache_hit={}, {} answer(s), |DQ|={}",
        epoch_before,
        resp.stats.epoch,
        resp.stats.cache_hit,
        resp.rows().unwrap().len(),
        resp.stats.meter.tuples_fetched
    );

    // An unbounded report query rides the budgeted baseline instead.
    let report = SpcQuery::builder(catalog, "all_taggers")
        .atom("tagging", "t")
        .project(("t", "tagger_id"))
        .build()?;
    let resp = session.query(&report, &BTreeMap::new())?;
    println!(
        "report query: lane={}, budget={:?}, {} answer(s), work={}",
        resp.stats.lane,
        resp.stats.budget,
        resp.rows().map_or(0, |r| r.len()),
        resp.stats.meter.work()
    );

    Ok(())
}
