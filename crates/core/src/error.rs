//! Error types for boundedness analysis and plan generation.

use std::fmt;

/// Errors raised while building schemas, queries, access constraints, or
/// generating query plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// An attribute name was not found in the given relation.
    UnknownAttribute {
        /// Relation (or alias) that was searched.
        relation: String,
        /// Attribute that was requested.
        attribute: String,
    },
    /// An atom alias was not found in the query under construction.
    UnknownAlias(String),
    /// A duplicate name was used where uniqueness is required.
    Duplicate(String),
    /// The object (schema, constraint, query) is structurally invalid.
    Invalid(String),
    /// The query is unsatisfiable: `Σ_Q` derives `S[A] = c` and `S[A] = d`
    /// for distinct constants `c ≠ d`.
    Unsatisfiable(String),
    /// Plan generation was requested for a query that is not effectively
    /// bounded under the access schema. Carries a human-readable diagnosis.
    NotEffectivelyBounded(String),
    /// A parameterized query was evaluated or planned with unbound
    /// placeholders.
    UnboundParameters(Vec<String>),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            CoreError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "relation `{relation}` has no attribute `{attribute}`"),
            CoreError::UnknownAlias(alias) => write!(f, "query has no atom aliased `{alias}`"),
            CoreError::Duplicate(what) => write!(f, "duplicate {what}"),
            CoreError::Invalid(msg) => write!(f, "invalid: {msg}"),
            CoreError::Unsatisfiable(msg) => write!(f, "query is unsatisfiable: {msg}"),
            CoreError::NotEffectivelyBounded(msg) => {
                write!(f, "query is not effectively bounded: {msg}")
            }
            CoreError::UnboundParameters(names) => {
                write!(f, "unbound parameters: {}", names.join(", "))
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            CoreError::UnknownRelation("r".into()).to_string(),
            "unknown relation `r`"
        );
        assert_eq!(
            CoreError::UnknownAttribute {
                relation: "r".into(),
                attribute: "a".into()
            }
            .to_string(),
            "relation `r` has no attribute `a`"
        );
        assert_eq!(
            CoreError::UnboundParameters(vec!["x".into(), "y".into()]).to_string(),
            "unbound parameters: x, y"
        );
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::Invalid("oops".into()));
        assert!(e.to_string().contains("oops"));
    }
}
