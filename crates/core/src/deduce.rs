//! The deduction engine shared by `I_B` and `I_E` (Section 3).
//!
//! Both rule systems reduce to a fixpoint computation over the `Σ_Q`
//! equivalence classes of a query:
//!
//! * **Actualization** instantiates each access constraint `X → (Y, N)` of
//!   `A` on each renaming `S_i` of its relation, producing the set `Γ` of
//!   [`GammaEntry`] hyperedges `premises ⇒ outputs` with multiplier `N`.
//! * **Reflexivity / Augmentation / Transitivity / Combination** collapse to
//!   reachability over those hyperedges starting from a seed set of classes
//!   (`X_B ∪ X_C` for boundedness, `X_C` for effective boundedness), because
//!   `X ↦ (Y, N)` holds for some `N` iff `Y ⊆ X*` (access-closure lemma in
//!   the proof of Theorem 3) — with `I_E` additionally requiring `Y` to be
//!   indexed in `A`, which the callers check separately per Theorem 4.
//!
//! Beyond membership, the engine computes for every reachable class the
//! **minimum derivable bound** `N_y` (the product of constraint bounds along
//! the best derivation) using a Dijkstra-style search over hyperedges: an
//! entry fires once all its premises are finalized, and the candidate bound
//! `N · Π premise-bounds` is never smaller than any premise bound (all
//! factors are ≥ 1), so classes finalize in non-decreasing bound order.
//! The minimizing derivation is recorded as a provenance DAG, which
//! [`crate::qplan`] replays into a fetch plan.

use crate::access::{AccessSchema, ConstraintId};
use crate::query::{QAttr, SpcQuery};
use crate::sigma::{ClassId, Sigma};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One actualized constraint: `S_i[X] ↦ (S_i[Y], N)` expressed over `Σ_Q`
/// equivalence classes.
#[derive(Debug, Clone)]
pub struct GammaEntry {
    /// Atom (renaming) the constraint was actualized on.
    pub atom: usize,
    /// The access constraint in `A`.
    pub constraint: ConstraintId,
    /// Classes of `S_i[X]`, deduplicated, sorted.
    pub premises: Vec<ClassId>,
    /// Classes of `S_i[Y]`, deduplicated, sorted, disjoint from premises.
    pub outputs: Vec<ClassId>,
    /// The cardinality bound `N`.
    pub n: u64,
}

/// Actualizes every constraint of `a` on every compatible atom of `q`
/// (the `Actualize(A, Q)` initialization step of Figures 3 and 4).
pub fn actualize(q: &SpcQuery, sigma: &Sigma, a: &AccessSchema) -> Vec<GammaEntry> {
    let mut gamma = Vec::new();
    for atom in 0..q.num_atoms() {
        let rel = q.relation_of(atom);
        for &cid in a.for_relation(rel) {
            let c = a.constraint(cid);
            let mut premises: Vec<ClassId> = c
                .x()
                .iter()
                .map(|&col| sigma.class_of_flat(q.flat_id(QAttr::new(atom, col))))
                .collect();
            premises.sort_unstable();
            premises.dedup();
            let mut outputs: Vec<ClassId> = c
                .y()
                .iter()
                .map(|&col| sigma.class_of_flat(q.flat_id(QAttr::new(atom, col))))
                .collect();
            outputs.sort_unstable();
            outputs.dedup();
            // A class that is both premise and output is already available
            // when the entry fires; keep outputs minimal.
            outputs.retain(|c| !premises.contains(c));
            if outputs.is_empty() {
                continue;
            }
            gamma.push(GammaEntry {
                atom,
                constraint: cid,
                premises,
                outputs,
                n: c.n(),
            });
        }
    }
    gamma
}

/// How a class entered the closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The class was a seed (constant / `X_B` member).
    Seed,
    /// The class was produced by firing the `Γ` entry with this index.
    Entry(usize),
}

/// Result of the closure computation.
#[derive(Debug, Clone)]
pub struct Closure {
    in_closure: Vec<bool>,
    bound: Vec<u128>,
    provenance: Vec<Option<Provenance>>,
    fired: Vec<usize>,
}

impl Closure {
    /// Computes the access closure of `seeds` under `gamma`, together with
    /// minimal bounds and provenance.
    pub fn compute(num_classes: usize, seeds: &[ClassId], gamma: &[GammaEntry]) -> Closure {
        let mut in_closure = vec![false; num_classes];
        let mut bound = vec![u128::MAX; num_classes];
        let mut provenance: Vec<Option<Provenance>> = vec![None; num_classes];
        let mut fired = Vec::new();

        // watch[class] = entries having `class` among their premises.
        let mut watch: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
        let mut remaining: Vec<usize> = Vec::with_capacity(gamma.len());
        for (ei, e) in gamma.iter().enumerate() {
            remaining.push(e.premises.len());
            for p in &e.premises {
                watch[p.0].push(ei);
            }
        }

        // (bound, class, provenance) min-heap; lazy deletion.
        let mut heap: BinaryHeap<Reverse<(u128, usize, ProvKey)>> = BinaryHeap::new();
        for s in seeds {
            heap.push(Reverse((1, s.0, ProvKey::Seed)));
        }
        // Premise-free entries fire immediately.
        let mut entry_fired = vec![false; gamma.len()];
        for (ei, e) in gamma.iter().enumerate() {
            if e.premises.is_empty() {
                entry_fired[ei] = true;
                fired.push(ei);
                for o in &e.outputs {
                    heap.push(Reverse((u128::from(e.n), o.0, ProvKey::Entry(ei))));
                }
            }
        }

        while let Some(Reverse((b, class, prov))) = heap.pop() {
            if in_closure[class] {
                continue;
            }
            in_closure[class] = true;
            bound[class] = b;
            provenance[class] = Some(match prov {
                ProvKey::Seed => Provenance::Seed,
                ProvKey::Entry(ei) => Provenance::Entry(ei),
            });
            for &ei in &watch[class] {
                remaining[ei] -= 1;
                if remaining[ei] == 0 && !entry_fired[ei] {
                    entry_fired[ei] = true;
                    fired.push(ei);
                    let e = &gamma[ei];
                    let mut cand = u128::from(e.n);
                    for p in &e.premises {
                        cand = cand.saturating_mul(bound[p.0]);
                    }
                    for o in &e.outputs {
                        if !in_closure[o.0] {
                            heap.push(Reverse((cand, o.0, ProvKey::Entry(ei))));
                        }
                    }
                }
            }
        }

        Closure {
            in_closure,
            bound,
            provenance,
            fired,
        }
    }

    /// `true` if the class is in the closure.
    pub fn contains(&self, class: ClassId) -> bool {
        self.in_closure[class.0]
    }

    /// `true` if every class in `classes` is in the closure.
    pub fn contains_all<'a>(&self, classes: impl IntoIterator<Item = &'a ClassId>) -> bool {
        classes.into_iter().all(|c| self.contains(*c))
    }

    /// Minimal derivable bound `N_y` for a class in the closure
    /// (`1` for seeds). `None` if the class is not in the closure.
    pub fn bound_of(&self, class: ClassId) -> Option<u128> {
        self.in_closure[class.0].then(|| self.bound[class.0])
    }

    /// Provenance of a class in the closure.
    pub fn provenance_of(&self, class: ClassId) -> Option<Provenance> {
        self.provenance[class.0]
    }

    /// `Γ` entry indices in firing order (premise-respecting topological
    /// order — the derivation replayed by plan generation).
    pub fn fired_entries(&self) -> &[usize] {
        &self.fired
    }

    /// Classes in the closure.
    pub fn members(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.in_closure
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(ClassId(i)))
    }
}

/// Heap payload; ordered only to satisfy `BinaryHeap` (never compared for
/// priority beyond tie-breaking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ProvKey {
    Seed,
    Entry(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::fixtures::{a0, q0, q1};

    fn setup(q: &SpcQuery, a: &AccessSchema) -> (Sigma, Vec<GammaEntry>) {
        let sigma = Sigma::build(q);
        let gamma = actualize(q, &sigma, a);
        (sigma, gamma)
    }

    #[test]
    fn actualization_of_a0_on_q0() {
        let q = q0();
        let a = a0();
        let (_, gamma) = setup(&q, &a);
        // One constraint per relation, one atom per relation => 3 entries.
        assert_eq!(gamma.len(), 3);
        let albums = &gamma[0];
        assert_eq!(albums.atom, 0);
        assert_eq!(albums.n, 1000);
        assert_eq!(albums.premises.len(), 1);
        assert_eq!(albums.outputs.len(), 1);
    }

    #[test]
    fn closure_from_xc_reaches_all_parameters_of_q0() {
        let q = q0();
        let a = a0();
        let (sigma, gamma) = setup(&q, &a);
        let closure = Closure::compute(sigma.num_classes(), &sigma.xc_classes(), &gamma);
        for cls in sigma.parameter_classes() {
            assert!(closure.contains(cls), "class {cls:?} not reached");
        }
    }

    #[test]
    fn q0_bounds_match_example_1() {
        let q = q0();
        let a = a0();
        let (sigma, gamma) = setup(&q, &a);
        let closure = Closure::compute(sigma.num_classes(), &sigma.xc_classes(), &gamma);
        // pid class is reachable with bound 1000 (via the album index).
        let pid = sigma.class_of_flat(q.flat_id(QAttr::new(0, 0)));
        assert_eq!(closure.bound_of(pid), Some(1000));
        // fid ~ tid1: the cheapest derivation is Example 5's step (13) —
        // through the tagging index keyed by (pid2, tid2), giving
        // 1000 * 1 = 1000, cheaper than the friends index's 5000.
        let fid = sigma.class_of_flat(q.flat_id(QAttr::new(1, 1)));
        assert_eq!(closure.bound_of(fid), Some(1000));
        // Seeds have bound 1.
        let aid = sigma.class_of_flat(q.flat_id(QAttr::new(0, 1)));
        assert_eq!(closure.bound_of(aid), Some(1));
    }

    #[test]
    fn q1_without_constants_reaches_nothing_new() {
        let q = q1();
        let a = a0();
        let (sigma, gamma) = setup(&q, &a);
        // X_C is empty for the template.
        let closure = Closure::compute(sigma.num_classes(), &sigma.xc_classes(), &gamma);
        assert_eq!(closure.members().count(), 0);
    }

    #[test]
    fn q1_xb_closure_misses_pid() {
        // Q1's X_B = {tid1~fid, tid2~uid}: without a value for aid, the
        // projected pid class is unreachable — "Q1 is not bounded even
        // under A0" (Example 1).
        let q = q1();
        let a = a0();
        let (sigma, gamma) = setup(&q, &a);
        let closure = Closure::compute(sigma.num_classes(), &sigma.xb_classes(), &gamma);
        let pid = sigma.class_of_flat(q.flat_id(QAttr::new(0, 0)));
        assert!(!closure.contains(pid));
    }

    #[test]
    fn provenance_points_at_firing_entry() {
        let q = q0();
        let a = a0();
        let (sigma, gamma) = setup(&q, &a);
        let closure = Closure::compute(sigma.num_classes(), &sigma.xc_classes(), &gamma);
        let pid = sigma.class_of_flat(q.flat_id(QAttr::new(0, 0)));
        match closure.provenance_of(pid) {
            Some(Provenance::Entry(ei)) => {
                assert!(gamma[ei].outputs.contains(&pid));
                assert_eq!(gamma[ei].n, 1000);
            }
            other => panic!("unexpected provenance {other:?}"),
        }
        // Firing order respects premises: the album entry fires first or
        // second but always after its premise (a seed).
        assert!(!closure.fired_entries().is_empty());
    }

    #[test]
    fn dijkstra_picks_cheaper_alternative() {
        // Two constraints derive the same target; the closure must pick the
        // cheaper one.
        use crate::schema::Catalog;
        let cat = Catalog::from_names(&[("r", &["a", "b"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r", &["a"], &["b"], 100).unwrap();
        a.add("r", &["a"], &["b"], 7).unwrap();
        let q = SpcQuery::builder(cat, "q")
            .atom("r", "r")
            .eq_const(("r", "a"), 1)
            .project(("r", "b"))
            .build()
            .unwrap();
        let sigma = Sigma::build(&q);
        let gamma = actualize(&q, &sigma, &a);
        let closure = Closure::compute(sigma.num_classes(), &sigma.xc_classes(), &gamma);
        let b = sigma.class_of_flat(q.flat_id(QAttr::new(0, 1)));
        assert_eq!(closure.bound_of(b), Some(7));
    }

    #[test]
    fn chained_bounds_multiply() {
        // a -> b (3), b -> c (5): bound(c) = 15.
        use crate::schema::Catalog;
        let cat = Catalog::from_names(&[("r", &["a", "b", "c"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r", &["a"], &["b"], 3).unwrap();
        a.add("r", &["b"], &["c"], 5).unwrap();
        let q = SpcQuery::builder(cat, "q")
            .atom("r", "r")
            .eq_const(("r", "a"), 1)
            .project(("r", "c"))
            .build()
            .unwrap();
        let sigma = Sigma::build(&q);
        let gamma = actualize(&q, &sigma, &a);
        let closure = Closure::compute(sigma.num_classes(), &sigma.xc_classes(), &gamma);
        let c = sigma.class_of_flat(q.flat_id(QAttr::new(0, 2)));
        assert_eq!(closure.bound_of(c), Some(15));
    }

    #[test]
    fn bounded_domain_constraint_fires_without_seeds() {
        use crate::schema::Catalog;
        let cat = Catalog::from_names(&[("r", &["a", "b"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r", &[], &["a"], 12).unwrap(); // domain of a bounded by 12
        a.add("r", &["a"], &["b"], 2).unwrap();
        let q = SpcQuery::builder(cat, "q")
            .atom("r", "r")
            .project(("r", "b"))
            .project(("r", "a"))
            .build()
            .unwrap();
        let sigma = Sigma::build(&q);
        let gamma = actualize(&q, &sigma, &a);
        let closure = Closure::compute(sigma.num_classes(), &[], &gamma);
        let a_cls = sigma.class_of_flat(q.flat_id(QAttr::new(0, 0)));
        let b_cls = sigma.class_of_flat(q.flat_id(QAttr::new(0, 1)));
        assert_eq!(closure.bound_of(a_cls), Some(12));
        assert_eq!(closure.bound_of(b_cls), Some(24));
    }

    #[test]
    fn huge_bounds_saturate_instead_of_overflowing() {
        // A chain of constraints each with N = u64::MAX: the product
        // overflows u128 after ~2 steps and must saturate, not wrap.
        use crate::schema::Catalog;
        let cat = Catalog::from_names(&[("r", &["a", "b", "c", "d"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r", &["a"], &["b"], u64::MAX).unwrap();
        a.add("r", &["b"], &["c"], u64::MAX).unwrap();
        a.add("r", &["c"], &["d"], u64::MAX).unwrap();
        let q = SpcQuery::builder(cat, "big")
            .atom("r", "r")
            .eq_const(("r", "a"), 1)
            .project(("r", "d"))
            .build()
            .unwrap();
        let sigma = Sigma::build(&q);
        let gamma = actualize(&q, &sigma, &a);
        let closure = Closure::compute(sigma.num_classes(), &sigma.xc_classes(), &gamma);
        let d = sigma.class_of_flat(q.flat_id(QAttr::new(0, 3)));
        let bound = closure.bound_of(d).unwrap();
        // Monotone: at least the two-step product, at most saturated.
        assert!(bound >= u128::from(u64::MAX) * u128::from(u64::MAX));
        assert_eq!(
            closure.bound_of(sigma.class_of_flat(q.flat_id(QAttr::new(0, 1)))),
            Some(u128::from(u64::MAX))
        );
    }

    #[test]
    fn multi_premise_entry_waits_for_all_premises() {
        use crate::schema::Catalog;
        let cat = Catalog::from_names(&[("r", &["a", "b", "c"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r", &["a", "b"], &["c"], 4).unwrap();
        let q = SpcQuery::builder(cat.clone(), "q")
            .atom("r", "r")
            .eq_const(("r", "a"), 1)
            .project(("r", "c"))
            .build()
            .unwrap();
        let sigma = Sigma::build(&q);
        let gamma = actualize(&q, &sigma, &a);
        // Only `a` is seeded; `b` is missing, so `c` is unreachable.
        let closure = Closure::compute(sigma.num_classes(), &sigma.xc_classes(), &gamma);
        let c_cls = sigma.class_of_flat(q.flat_id(QAttr::new(0, 2)));
        assert!(!closure.contains(c_cls));

        // With both a and b constant, c is reached with bound 4.
        let q2 = SpcQuery::builder(cat, "q2")
            .atom("r", "r")
            .eq_const(("r", "a"), 1)
            .eq_const(("r", "b"), 2)
            .project(("r", "c"))
            .build()
            .unwrap();
        let sigma2 = Sigma::build(&q2);
        let gamma2 = actualize(&q2, &sigma2, &a);
        let closure2 = Closure::compute(sigma2.num_classes(), &sigma2.xc_classes(), &gamma2);
        let c_cls2 = sigma2.class_of_flat(q2.flat_id(QAttr::new(0, 2)));
        assert_eq!(closure2.bound_of(c_cls2), Some(4));
    }
}
