//! Bounded query plans (Section 5): proofs of `X_C ↦_IE (X^i_Q, M_i)`
//! replayed as dataflow.
//!
//! A [`QueryPlan`] is a topologically-ordered list of [`FetchStep`]s. Each
//! step probes the index of one access constraint on one atom, with key
//! values drawn from constants of the query and/or columns of earlier steps
//! (the `T_j ⊆ D` sets of Section 5.1). The union of all fetched tuples is
//! `D_Q`; the final join/filter/project over the per-atom *anchor* steps
//! computes `Q(D_Q) = Q(D)`.
//!
//! The static cost [`QueryPlan::cost_bound`] is the paper's `Σ M_i` bound on
//! `|D_Q|` — e.g. 7 000 for query `Q0` under access schema `A0` of
//! Example 1.

use crate::access::ConstraintId;
use crate::program::OpProgram;
use crate::query::SpcQuery;
use crate::sigma::{ClassId, Sigma};
use crate::value::Value;
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a step within its plan (also its position in
/// [`QueryPlan::steps`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StepId(pub usize);

/// Where one key column of an index probe gets its values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySource {
    /// A constant from `X_C` (one fixed value).
    Const(Value),
    /// A parameter slot: the value of placeholder `?name`, supplied at
    /// execution time. Produced only by [`crate::qplan::qplan_template`] —
    /// the compiled-once/executed-many plans of the serving layer (the
    /// paper's parameterized queries `Q(x̄)` of Example 1(2)).
    Param(String),
    /// The distinct values of column `col` (an index into the source step's
    /// `out_cols`) of an earlier step's fetched tuples.
    Column {
        /// The earlier step providing the values.
        step: StepId,
        /// Position within that step's `out_cols`.
        col: usize,
    },
}

/// How a step fetches tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// Probe the index of `constraint` with the enumerated keys; retrieve
    /// the (≤ N per key) witness tuples.
    IndexLookup,
    /// Fetch one arbitrary tuple — emptiness witness for an atom with no
    /// parameters (`X^i_Q = ∅`).
    Any,
}

/// One bounded fetch `T_j` of the plan.
#[derive(Debug, Clone)]
pub struct FetchStep {
    /// This step's id (= index in the plan).
    pub id: StepId,
    /// The atom (renaming) whose relation is probed.
    pub atom: usize,
    /// The access constraint whose index is used (`None` for [`FetchKind::Any`]).
    pub constraint: Option<ConstraintId>,
    /// Fetch mode.
    pub kind: FetchKind,
    /// Key columns of the probed relation paired with their value sources;
    /// aligned with the constraint's `X` columns (empty for `Any` or for
    /// bounded-domain constraints with `X = ∅`).
    pub key: Vec<(usize, KeySource)>,
    /// Relation columns materialized by the step (`X ∪ Y` of the
    /// constraint), sorted.
    pub out_cols: Vec<usize>,
    /// `Σ_Q` class of each materialized column (aligned with `out_cols`).
    pub out_classes: Vec<ClassId>,
    /// Static bound on the number of tuples this step can fetch.
    pub bound: u128,
    /// `true` if this step supplies the atom's tuples to the final join.
    pub is_anchor: bool,
}

impl FetchStep {
    /// Position of the materialized column carrying `class`, if any.
    pub fn col_of_class(&self, class: ClassId) -> Option<usize> {
        self.out_classes.iter().position(|&c| c == class)
    }
}

/// A complete bounded evaluation plan for an effectively bounded query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    query: SpcQuery,
    sigma: Sigma,
    steps: Vec<FetchStep>,
    anchor_of_atom: Vec<StepId>,
    cost_bound: u128,
    /// `true` if `Σ_Q` is inconsistent: the plan fetches nothing and the
    /// answer is empty.
    unsatisfiable: bool,
    /// The template's distinct placeholder names, computed once at plan
    /// time so per-request binding validation never re-walks predicates.
    slots: Vec<String>,
    /// The compiled operator program over the anchors' batch layouts —
    /// compiled **lazily** on first [`QueryPlan::program`] access, so
    /// analysis-only callers (the min-`D_Q` search plans hundreds of
    /// candidate subsets just to read `cost_bound`) never pay for it.
    /// Executors and the serving layer's prepare force it exactly once.
    program: OnceLock<OpProgram>,
}

impl QueryPlan {
    /// Assembles a plan; used by [`crate::qplan`].
    pub(crate) fn new(
        query: SpcQuery,
        sigma: Sigma,
        steps: Vec<FetchStep>,
        anchor_of_atom: Vec<StepId>,
        unsatisfiable: bool,
    ) -> Self {
        debug_assert!(unsatisfiable || anchor_of_atom.len() == query.num_atoms());
        let cost_bound = steps
            .iter()
            .map(|s| s.bound)
            .fold(0u128, u128::saturating_add);
        let slots = query.placeholder_names();
        QueryPlan {
            query,
            sigma,
            steps,
            anchor_of_atom,
            cost_bound,
            unsatisfiable,
            slots,
            program: OnceLock::new(),
        }
    }

    /// The planned query.
    pub fn query(&self) -> &SpcQuery {
        &self.query
    }

    /// The query's equality closure (shared with executors for join specs).
    pub fn sigma(&self) -> &Sigma {
        &self.sigma
    }

    /// Fetch steps in dependency (execution) order.
    pub fn steps(&self) -> &[FetchStep] {
        &self.steps
    }

    /// The anchor step of each atom (the step whose tuples feed the join).
    pub fn anchor_of_atom(&self, atom: usize) -> &FetchStep {
        &self.steps[self.anchor_of_atom[atom].0]
    }

    /// The compiled operator program: the plan's physical shape — filter
    /// checks, join schedule, key permutations, projection map — resolved
    /// to positions once. Executors interpret this instead of re-deriving
    /// the shape from the query per request. Compiled on first access
    /// (subsequent calls are an atomic load); the serving layer calls this
    /// at prepare time so requests never compile.
    pub fn program(&self) -> &OpProgram {
        self.program.get_or_init(|| {
            // The anchors' batch layouts, with the static fetch bounds
            // steering the join order. For an unsatisfiable plan there are
            // no anchors (and no execution): an all-empty layout keeps the
            // attribute→class map available.
            let (atom_cols, size_hints): (Vec<Vec<usize>>, Option<Vec<u128>>) =
                if self.unsatisfiable {
                    (vec![Vec::new(); self.query.num_atoms()], None)
                } else {
                    let cols = self
                        .anchor_of_atom
                        .iter()
                        .map(|sid| self.steps[sid.0].out_cols.clone())
                        .collect();
                    let hints = self
                        .anchor_of_atom
                        .iter()
                        .map(|sid| self.steps[sid.0].bound)
                        .collect();
                    (cols, Some(hints))
                };
            OpProgram::compile(&self.query, &self.sigma, &atom_cols, size_hints.as_deref())
        })
    }

    /// The paper's `Σ M_i`: a bound on `|D_Q|`, the number of tuples any
    /// execution of this plan can fetch — independent of `|D|`.
    pub fn cost_bound(&self) -> u128 {
        self.cost_bound
    }

    /// `true` if the query was statically unsatisfiable (`Q(D) = ∅`).
    pub fn is_unsatisfiable(&self) -> bool {
        self.unsatisfiable
    }

    /// Names of the plan's parameter slots — the template's placeholders —
    /// deduplicated, in first-use order. Empty for ground plans. Execution
    /// must supply a value for each (see `eval_dq_with` in `bcq-exec`).
    pub fn param_slots(&self) -> &[String] {
        &self.slots
    }

    /// `true` if the plan has parameter slots (compiled from a template).
    pub fn is_parameterized(&self) -> bool {
        self.query.has_placeholders()
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.unsatisfiable {
            return writeln!(f, "-- unsatisfiable: answer is empty, no data accessed");
        }
        let cat = self.query.catalog();
        for s in &self.steps {
            let atom = &self.query.atoms()[s.atom];
            let rel = cat.relation(atom.relation);
            write!(f, "T{} := ", s.id.0)?;
            match s.kind {
                FetchKind::Any => {
                    write!(f, "fetch-any {} {}", rel.name(), atom.alias)?;
                }
                FetchKind::IndexLookup => {
                    write!(f, "fetch {} {} via index", rel.name(), atom.alias)?;
                    if !s.key.is_empty() {
                        write!(f, " where ")?;
                        for (i, (col, src)) in s.key.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{}", rel.attribute(*col))?;
                            match src {
                                KeySource::Const(v) => write!(f, " = {v}")?,
                                KeySource::Param(name) => write!(f, " = ?{name}")?,
                                KeySource::Column { step, col } => {
                                    let src_step = &self.steps[step.0];
                                    let src_atom = &self.query.atoms()[src_step.atom];
                                    let src_rel = cat.relation(src_atom.relation);
                                    write!(
                                        f,
                                        " in T{}.{}",
                                        step.0,
                                        src_rel.attribute(src_step.out_cols[*col])
                                    )?;
                                }
                            }
                        }
                    }
                }
            }
            write!(f, "   (<= {} tuples)", s.bound)?;
            if s.is_anchor {
                write!(f, " [anchor]")?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "answer := project/join over anchors   (|DQ| <= {})",
            self.cost_bound
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::qplan::qplan;
    use crate::query::fixtures::{a0, q0};

    #[test]
    fn q0_plan_costs_7000() {
        // Example 1/10: |DQ| <= 7000 tuples under A0.
        let plan = qplan(&q0(), &a0()).unwrap();
        assert_eq!(plan.cost_bound(), 7000);
        assert_eq!(plan.steps().len(), 3);
        assert!(!plan.is_unsatisfiable());
        // Each atom has an anchor covering its parameter columns.
        for atom in 0..3 {
            let anchor = plan.anchor_of_atom(atom);
            assert!(anchor.is_anchor);
            assert_eq!(anchor.atom, atom);
        }
    }

    #[test]
    fn q0_plan_display_mentions_all_tables() {
        let plan = qplan(&q0(), &a0()).unwrap();
        let text = plan.to_string();
        assert!(text.contains("in_album"), "{text}");
        assert!(text.contains("friends"), "{text}");
        assert!(text.contains("tagging"), "{text}");
        assert!(text.contains("7000"), "{text}");
    }

    #[test]
    fn col_of_class_finds_columns() {
        let plan = qplan(&q0(), &a0()).unwrap();
        for step in plan.steps() {
            for (i, cls) in step.out_classes.iter().enumerate() {
                assert_eq!(step.col_of_class(*cls), Some(i));
            }
        }
    }
}
