//! Algorithm `QPlan` (Section 5.1): generating bounded query plans.
//!
//! For an effectively bounded query, Theorem 4 guarantees a proof
//! `X_C ↦_IE (X^i_Q, M_i)` for every atom `S_i`. `QPlan` materializes those
//! proofs as a DAG of index fetches:
//!
//! 1. Compute the access closure of `X_C` with minimal bounds and provenance
//!    ([`crate::deduce`]).
//! 2. For each atom, choose an **anchor** constraint — a witness that
//!    `X^i_Q` is indexed — minimizing the estimated fetch bound (the greedy
//!    stand-in for the NP-complete minimum-`D_Q` problem of Section 5.2).
//! 3. Replay the provenance of every class the anchors' keys depend on into
//!    [`FetchStep`]s, sharing steps between atoms (the paper's `X_C^{min+}`
//!    object set collapses equivalent proofs the same way).
//!
//! The result fetches at most `Σ M_i` tuples on any `D |= A` — compare
//! Example 10, where `Q0`'s plan fetches `T1`(≤1000) + `T2`(≤5000) +
//! `T3`(≤1000) = 7000 tuples.
//!
//! Complexity: dominated by the closure computation plus one pass over
//! constraints per atom — comfortably within the paper's `O(|Q|^2 |A|^3)`.

use crate::access::{AccessSchema, ConstraintId};
use crate::deduce::{actualize, Closure, GammaEntry, Provenance};
use crate::ebcheck::{ebcheck_with_seeds, xq_cols};
use crate::error::{CoreError, Result};
use crate::plan::{FetchKind, FetchStep, KeySource, QueryPlan, StepId};
use crate::query::{QAttr, SpcQuery};
use crate::sigma::{ClassId, Sigma};
use std::collections::{BTreeSet, HashMap};

/// Generates a bounded query plan for `q` under `a`.
///
/// Fails with [`CoreError::NotEffectivelyBounded`] (with a per-atom
/// diagnosis) if no plan exists, and with [`CoreError::UnboundParameters`]
/// if the query template still has placeholders. Use [`qplan_template`] to
/// compile a template with placeholders into a parameterized plan.
pub fn qplan(q: &SpcQuery, a: &AccessSchema) -> Result<QueryPlan> {
    q.require_ground()?;
    plan_inner(q, a)
}

/// Generates a **parameterized** bounded plan for a query template.
///
/// Placeholders (`S[A] = ?name`) are treated as constants whose values
/// arrive at execution time: their classes seed the access closure exactly
/// like `X_C` (effective boundedness of the instantiated query depends only
/// on *which* attributes are instantiated, not on the values — the same
/// property the dominating-parameter search exploits), and key columns
/// pinned by a placeholder become [`KeySource::Param`] slots in the plan.
/// Planning with each placeholder as its *own* class is conservative: a
/// binding that happens to repeat a value across placeholders only adds
/// equalities, never removes answers the plan would miss.
///
/// On a ground query this is identical to [`qplan`]. The resulting plan
/// must be executed with a binding for every slot (`eval_dq_with` in
/// `bcq-exec`); `eval_dq` rejects parameterized plans it is given without
/// bindings.
pub fn qplan_template(q: &SpcQuery, a: &AccessSchema) -> Result<QueryPlan> {
    plan_inner(q, a)
}

fn plan_inner(q: &SpcQuery, a: &AccessSchema) -> Result<QueryPlan> {
    let sigma = Sigma::build(q);
    if !sigma.is_satisfiable() {
        return Ok(QueryPlan::new(
            q.clone(),
            sigma,
            Vec::new(),
            Vec::new(),
            true,
        ));
    }

    // Classes pinned by a placeholder but not by a constant: bound at
    // execution time, so they seed the closure like constants do.
    let param_classes: Vec<ClassId> = (0..sigma.num_classes())
        .map(ClassId)
        .filter(|id| {
            let c = sigma.class(*id);
            !c.placeholders.is_empty() && c.constant.is_none()
        })
        .collect();

    let report = ebcheck_with_seeds(q, &sigma, a, &param_classes);
    if !report.effectively_bounded {
        let why = report
            .first_failure(q)
            .unwrap_or_else(|| "effective boundedness check failed".to_string());
        return Err(CoreError::NotEffectivelyBounded(why));
    }

    let gamma = actualize(q, &sigma, a);
    let mut seeds = sigma.xc_classes();
    seeds.extend_from_slice(&param_classes);
    let closure = Closure::compute(sigma.num_classes(), &seeds, &gamma);

    let mut b = PlanBuilder {
        q,
        a,
        sigma: &sigma,
        closure: &closure,
        gamma: &gamma,
        steps: Vec::new(),
        memo: HashMap::new(),
    };

    let mut anchors = Vec::with_capacity(q.num_atoms());
    for atom in 0..q.num_atoms() {
        let mut xq = xq_cols(q, &sigma, atom);
        // Placeholder-pinned columns are parameters of the instantiated
        // query (mirrors `extra_is_param` in `ebcheck_with_seeds`).
        for col in 0..q.arity_of(atom) {
            let cls = sigma.class_of_flat(q.flat_id(QAttr::new(atom, col)));
            if param_classes.contains(&cls) && !xq.contains(&col) {
                xq.push(col);
            }
        }
        xq.sort_unstable();
        let sid = if xq.is_empty() {
            b.any_step(atom)
        } else {
            let rel = q.relation_of(atom);
            let mut best: Option<(u128, ConstraintId)> = None;
            for cid in a.covering_constraints(rel, &xq) {
                let est = b.estimate(atom, cid);
                if best.is_none_or(|(e, _)| est < e) {
                    best = Some((est, cid));
                }
            }
            let (_, cid) = best.expect("EBCheck certified an index witness");
            b.step_for(atom, cid)
        };
        b.steps[sid.0].is_anchor = true;
        anchors.push(sid);
    }

    let steps = std::mem::take(&mut b.steps);
    drop(b);
    Ok(QueryPlan::new(q.clone(), sigma, steps, anchors, false))
}

struct PlanBuilder<'a> {
    q: &'a SpcQuery,
    a: &'a AccessSchema,
    sigma: &'a Sigma,
    closure: &'a Closure,
    gamma: &'a [GammaEntry],
    steps: Vec<FetchStep>,
    memo: HashMap<(usize, ConstraintId), StepId>,
}

impl PlanBuilder<'_> {
    fn class_of(&self, atom: usize, col: usize) -> ClassId {
        self.sigma
            .class_of_flat(self.q.flat_id(QAttr::new(atom, col)))
    }

    /// Greedy cost estimate of anchoring `atom` on `cid`:
    /// `N · Π (minimal class bound of each distinct premise class)`.
    fn estimate(&self, atom: usize, cid: ConstraintId) -> u128 {
        let c = self.a.constraint(cid);
        let mut classes: Vec<ClassId> = c.x().iter().map(|&col| self.class_of(atom, col)).collect();
        classes.sort_unstable();
        classes.dedup();
        let mut est = u128::from(c.n());
        for cls in classes {
            let b = self
                .closure
                .bound_of(cls)
                .expect("anchor premises are in the closure");
            est = est.saturating_mul(b);
        }
        est
    }

    /// The key source for a class: a constant if instantiated, a parameter
    /// slot if placeholder-pinned, otherwise a column of the (memoized)
    /// step replaying its provenance entry.
    fn source_for_class(&mut self, class: ClassId) -> KeySource {
        let info = self.sigma.class(class);
        if let Some(v) = &info.constant {
            return KeySource::Const(v.clone());
        }
        if let Some(name) = info.placeholders.first() {
            return KeySource::Param(name.clone());
        }
        match self
            .closure
            .provenance_of(class)
            .expect("key class must be in the closure")
        {
            Provenance::Seed => unreachable!("non-constant seeds do not occur in qplan"),
            Provenance::Entry(ei) => {
                let e = &self.gamma[ei];
                let (atom, cid) = (e.atom, e.constraint);
                let sid = self.step_for(atom, cid);
                let col = self.steps[sid.0]
                    .col_of_class(class)
                    .expect("provenance step materializes its output classes");
                KeySource::Column { step: sid, col }
            }
        }
    }

    /// Creates (or reuses) the fetch step probing `cid`'s index on `atom`.
    fn step_for(&mut self, atom: usize, cid: ConstraintId) -> StepId {
        if let Some(&sid) = self.memo.get(&(atom, cid)) {
            return sid;
        }
        let c = self.a.constraint(cid).clone();
        let mut key = Vec::with_capacity(c.x().len());
        let mut src_steps: BTreeSet<StepId> = BTreeSet::new();
        for &col in c.x() {
            let class = self.class_of(atom, col);
            let src = self.source_for_class(class);
            if let KeySource::Column { step, .. } = &src {
                src_steps.insert(*step);
            }
            key.push((col, src));
        }
        // Keys from the same source step arrive as row-wise combinations
        // (bounded by that step's bound); across steps and constants they
        // multiply — the Transitivity/Combination arithmetic of I_E.
        let mut bound = u128::from(c.n());
        for s in &src_steps {
            bound = bound.saturating_mul(self.steps[s.0].bound);
        }
        let out_cols = c.covered();
        let out_classes = out_cols
            .iter()
            .map(|&col| self.class_of(atom, col))
            .collect();
        let sid = StepId(self.steps.len());
        self.steps.push(FetchStep {
            id: sid,
            atom,
            constraint: Some(cid),
            kind: FetchKind::IndexLookup,
            key,
            out_cols,
            out_classes,
            bound,
            is_anchor: false,
        });
        self.memo.insert((atom, cid), sid);
        sid
    }

    /// A 1-tuple emptiness witness for an atom with no parameters.
    fn any_step(&mut self, atom: usize) -> StepId {
        let sid = StepId(self.steps.len());
        self.steps.push(FetchStep {
            id: sid,
            atom,
            constraint: None,
            kind: FetchKind::Any,
            key: Vec::new(),
            out_cols: Vec::new(),
            out_classes: Vec::new(),
            bound: 1,
            is_anchor: false,
        });
        sid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::KeySource;
    use crate::query::fixtures::{a0, photos_catalog, q0, q1};
    use crate::schema::Catalog;
    use crate::value::Value;

    #[test]
    fn q0_plan_matches_example_10() {
        let plan = qplan(&q0(), &a0()).unwrap();
        // Three steps: in_album by constant, friends by constant, tagging
        // keyed by (photo_id in T_album, taggee_id = "u0").
        assert_eq!(plan.steps().len(), 3);
        let tagging = plan.anchor_of_atom(2);
        assert_eq!(tagging.key.len(), 2);
        let mut has_const = false;
        let mut has_column = false;
        for (_, src) in &tagging.key {
            match src {
                KeySource::Const(v) => {
                    has_const = true;
                    assert_eq!(v, &Value::str("u0"));
                }
                KeySource::Column { step, .. } => {
                    has_column = true;
                    // Values come from the in_album step.
                    assert_eq!(plan.steps()[step.0].atom, 0);
                }
                KeySource::Param(name) => panic!("ground plan has no param slot ?{name}"),
            }
        }
        assert!(has_const && has_column);
        assert_eq!(tagging.bound, 1000);
    }

    #[test]
    fn template_plan_has_param_slots() {
        // Q1 (the ?aid/?uid template) is not plannable ground, but compiles
        // to a parameterized plan whose key sources carry the slots.
        let plan = qplan_template(&q1(), &a0()).unwrap();
        assert!(plan.is_parameterized());
        assert_eq!(plan.param_slots(), vec!["aid", "uid"]);
        assert_eq!(plan.steps().len(), 3);
        let mut params = Vec::new();
        for step in plan.steps() {
            for (_, src) in &step.key {
                if let KeySource::Param(name) = src {
                    params.push(name.clone());
                }
            }
        }
        params.sort();
        params.dedup();
        assert_eq!(params, vec!["aid", "uid"]);
        // The bound matches the ground plan's: instantiation adds nothing.
        let mut b = std::collections::BTreeMap::new();
        b.insert("aid".to_string(), Value::str("a0"));
        b.insert("uid".to_string(), Value::str("u0"));
        let ground_plan = qplan(&q1().instantiate(&b), &a0()).unwrap();
        assert_eq!(plan.cost_bound(), ground_plan.cost_bound());
    }

    #[test]
    fn template_plan_on_ground_query_matches_qplan() {
        let a = qplan(&q0(), &a0()).unwrap();
        let b = qplan_template(&q0(), &a0()).unwrap();
        assert_eq!(a.cost_bound(), b.cost_bound());
        assert_eq!(a.steps().len(), b.steps().len());
        assert!(!b.is_parameterized());
        assert!(b.param_slots().is_empty());
    }

    #[test]
    fn template_not_effectively_bounded_still_errors() {
        // Without the friends index, even the instantiated template cannot
        // be fetched boundedly.
        let cat = photos_catalog();
        let q = SpcQuery::builder(cat.clone(), "t")
            .atom("friends", "f")
            .eq_param(("f", "user_id"), "u")
            .project(("f", "friend_id"))
            .build()
            .unwrap();
        let err = qplan_template(&q, &AccessSchema::new(cat)).unwrap_err();
        assert!(matches!(err, CoreError::NotEffectivelyBounded(_)));
    }

    #[test]
    fn not_effectively_bounded_is_an_error() {
        let err = qplan(&q1(), &a0()).unwrap_err();
        // Q1 has unbound placeholders.
        assert!(matches!(err, CoreError::UnboundParameters(_)));

        // A ground but non-effectively-bounded query errors with a
        // diagnosis.
        let cat = photos_catalog();
        let q = SpcQuery::builder(cat.clone(), "scan")
            .atom("friends", "f")
            .project(("f", "friend_id"))
            .build()
            .unwrap();
        let err = qplan(&q, &AccessSchema::new(cat)).unwrap_err();
        assert!(matches!(err, CoreError::NotEffectivelyBounded(_)));
    }

    #[test]
    fn unsatisfiable_query_gets_empty_plan() {
        let cat = photos_catalog();
        let q = SpcQuery::builder(cat.clone(), "bad")
            .atom("friends", "f")
            .eq_const(("f", "user_id"), 1)
            .eq_const(("f", "user_id"), 2)
            .project(("f", "friend_id"))
            .build()
            .unwrap();
        let plan = qplan(&q, &AccessSchema::new(cat)).unwrap();
        assert!(plan.is_unsatisfiable());
        assert_eq!(plan.cost_bound(), 0);
        assert!(plan.steps().is_empty());
    }

    #[test]
    fn steps_are_shared_between_atoms() {
        // Two atoms both keyed by values of the same intermediate step: the
        // provider is created once.
        let cat = Catalog::from_names(&[
            ("src", &["k", "v"]),
            ("t1", &["a", "b"]),
            ("t2", &["c", "d"]),
        ])
        .unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("src", &["k"], &["v"], 10).unwrap();
        a.add("t1", &["a"], &["b"], 3).unwrap();
        a.add("t2", &["c"], &["d"], 4).unwrap();
        let q = SpcQuery::builder(cat, "shared")
            .atom("src", "s")
            .atom("t1", "t1")
            .atom("t2", "t2")
            .eq_const(("s", "k"), 1)
            .eq(("s", "v"), ("t1", "a"))
            .eq(("s", "v"), ("t2", "c"))
            .project(("t1", "b"))
            .project(("t2", "d"))
            .build()
            .unwrap();
        let plan = qplan(&q, &a).unwrap();
        // src fetched once (10), t1 once (10*3), t2 once (10*4).
        assert_eq!(plan.steps().len(), 3);
        assert_eq!(plan.cost_bound(), 10 + 30 + 40);
    }

    #[test]
    fn atom_without_parameters_gets_fetch_any() {
        let cat = Catalog::from_names(&[("s1", &["a", "b"]), ("s2", &["c", "d"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("s1", &["a"], &["b"], 3).unwrap();
        let q = SpcQuery::builder(cat, "e")
            .atom("s1", "s1")
            .atom("s2", "s2")
            .eq_const(("s1", "a"), 1)
            .project(("s1", "b"))
            .build()
            .unwrap();
        let plan = qplan(&q, &a).unwrap();
        let any = plan.anchor_of_atom(1);
        assert_eq!(any.kind, FetchKind::Any);
        assert_eq!(any.bound, 1);
        assert_eq!(plan.cost_bound(), 3 + 1);
    }

    #[test]
    fn greedy_prefers_cheaper_anchor() {
        // Two covering constraints for the same atom; the plan must choose
        // the cheaper one.
        let cat = Catalog::from_names(&[("r", &["a", "b"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r", &["a"], &["b"], 500).unwrap();
        a.add("r", &["a"], &["b"], 50).unwrap();
        let q = SpcQuery::builder(cat, "q")
            .atom("r", "r")
            .eq_const(("r", "a"), 1)
            .project(("r", "b"))
            .build()
            .unwrap();
        let plan = qplan(&q, &a).unwrap();
        assert_eq!(plan.cost_bound(), 50);
    }

    #[test]
    fn bounded_domain_chain_plans_without_constants() {
        // ∅ → (a, 12), a → (b, 2): a query with no constants still plans:
        // fetch the ≤12 a-values, then probe b per a.
        let cat = Catalog::from_names(&[("r", &["a", "b"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r", &[], &["a"], 12).unwrap();
        a.add("r", &["a"], &["b"], 2).unwrap();
        let q = SpcQuery::builder(cat, "q")
            .atom("r", "r")
            .project(("r", "a"))
            .project(("r", "b"))
            .build()
            .unwrap();
        let plan = qplan(&q, &a).unwrap();
        assert_eq!(plan.steps().len(), 2);
        // 12 (domain fetch) + 12*2 (b probes).
        assert_eq!(plan.cost_bound(), 12 + 24);
    }

    #[test]
    fn deep_transitive_chain() {
        // a=const -> b -> c -> d across three atoms.
        let cat = Catalog::from_names(&[
            ("r1", &["a", "b"]),
            ("r2", &["b2", "c"]),
            ("r3", &["c2", "d"]),
        ])
        .unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r1", &["a"], &["b"], 2).unwrap();
        a.add("r2", &["b2"], &["c"], 3).unwrap();
        a.add("r3", &["c2"], &["d"], 5).unwrap();
        let q = SpcQuery::builder(cat, "chain")
            .atom("r1", "r1")
            .atom("r2", "r2")
            .atom("r3", "r3")
            .eq_const(("r1", "a"), 1)
            .eq(("r1", "b"), ("r2", "b2"))
            .eq(("r2", "c"), ("r3", "c2"))
            .project(("r3", "d"))
            .build()
            .unwrap();
        let plan = qplan(&q, &a).unwrap();
        assert_eq!(plan.steps().len(), 3);
        // r1: 2; r2: 2*3 = 6; r3: 6*5 = 30.
        assert_eq!(plan.cost_bound(), 2 + 6 + 30);
        // Execution order respects dependencies: each Column source refers
        // to an earlier step.
        for (i, s) in plan.steps().iter().enumerate() {
            for (_, src) in &s.key {
                if let KeySource::Column { step, .. } = src {
                    assert!(step.0 < i, "step {i} depends on later step {}", step.0);
                }
            }
        }
    }
}
