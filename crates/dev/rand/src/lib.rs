#![warn(missing_docs)]
//! Offline stand-in for the `rand` crate.
//!
//! This repository builds without network access, so the small slice of the
//! `rand` API the workload generators use — `rngs::SmallRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! ranges — is implemented locally. The generator is a SplitMix64 stream:
//! statistically solid for data synthesis, fully deterministic in the seed,
//! and obviously not cryptographic (neither is the real `SmallRng`).
//!
//! The streams differ from the real `rand::rngs::SmallRng`, which is fine:
//! every consumer in this workspace only relies on determinism in the seed,
//! never on specific draws.

use std::ops::Range;

/// A random number generator: the single low-level method everything else
/// derives from.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open, must be non-empty).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, n)` by widening multiplication (Lemire's method;
/// the tiny modulo bias of the plain `% n` alternative is avoided).
fn uniform_u64<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    (((u128::from(rng.next_u64())) * u128::from(n)) >> 64) as u64
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> u64 {
        self.start + uniform_u64(rng, self.end - self.start)
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> u32 {
        self.start + uniform_u64(rng, u64::from(self.end - self.start)) as u32
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> usize {
        self.start + uniform_u64(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> i64 {
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(uniform_u64(rng, span) as i64)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..100)
            .filter(|_| a.gen_range(0..1000u64) == b.gen_range(0..1000u64))
            .count();
        assert!(same < 20, "{same} collisions");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }
}
