//! Snapshot consistency under the sharded store: a held snapshot is a
//! **frozen vector clock** — its global epoch, every per-relation epoch,
//! and every cross-relation invariant stay exactly as they were when the
//! snapshot was taken, while writers advance other shards underneath —
//! and the plan cache revalidates a cached plan **iff** a relation its
//! access schema reads advanced.
//!
//! Three layers of evidence:
//!
//! * a property test driving random per-relation write schedules against
//!   snapshots taken at random points;
//! * a property test driving random writes against a server with two
//!   cached plans of disjoint read sets, checking the revalidation
//!   counters move exactly when a read relation does;
//! * a threaded stress test (run in release mode in CI) with writers
//!   pinned to disjoint relations and readers asserting cross-relation
//!   consistency of a paired-row invariant.

use bounded_cq::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    Catalog::from_names(&[
        ("edge", &["src", "dst"]),
        ("label", &["node", "tag"]),
        ("audit", &["node", "note"]),
    ])
    .unwrap()
}

fn access(cat: &Arc<Catalog>) -> AccessSchema {
    let mut a = AccessSchema::new(Arc::clone(cat));
    a.add("edge", &["src"], &["dst"], 64).unwrap();
    a.add("label", &["node"], &["tag"], 64).unwrap();
    a.add("audit", &["node"], &["note"], 64).unwrap();
    a
}

const RELS: [&str; 3] = ["edge", "label", "audit"];

fn row_for(rel: usize, x: i64, y: i64) -> Vec<Value> {
    match rel {
        0 => vec![Value::int(x), Value::int(y)],
        1 => vec![Value::int(x), Value::str(format!("t{y}"))],
        _ => vec![Value::int(x), Value::str(format!("n{y}"))],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random write schedules over three relations; a snapshot taken after
    /// every prefix must keep its entire vector clock, row counts, and
    /// shard pointers frozen while later writes land elsewhere — and the
    /// vector clock must advance exactly on the touched relation.
    #[test]
    fn snapshots_freeze_the_vector_clock(
        writes in prop::collection::vec((0..3usize, any::<bool>(), 0..10i64, 0..10i64), 1..40),
    ) {
        let cat = catalog();
        let a = access(&cat);
        let mut db = Database::new(Arc::clone(&cat));
        db.build_indexes(&a);
        let shared = SharedDb::new(db);

        let mut snapshots: Vec<Arc<Database>> = vec![shared.snapshot()];
        for &(rel, maintained, x, y) in &writes {
            let before: Vec<u64> = (0..3).map(|i| shared.epoch_of(RelId(i))).collect();
            let row = row_for(rel, x, y);
            shared.write(|d| {
                if maintained {
                    d.insert_maintained(RELS[rel], &row).map(|_| ()).unwrap();
                } else {
                    d.insert(RELS[rel], &row).unwrap();
                    d.build_indexes(&a);
                }
            });
            // The vector clock advanced on the touched relation only.
            for (i, &prev) in before.iter().enumerate() {
                if i == rel {
                    prop_assert!(shared.epoch_of(RelId(i)) > prev);
                } else {
                    prop_assert_eq!(shared.epoch_of(RelId(i)), prev, "untouched component");
                }
            }
            prop_assert_eq!(shared.epoch(), shared.snapshot().epoch());
            snapshots.push(shared.snapshot());
        }

        // Every historical snapshot is a frozen vector clock whose row
        // counts replay the write prefix, and consecutive snapshots share
        // the shards the intervening write did not touch.
        for (i, snap) in snapshots.iter().enumerate() {
            let prefix = &writes[..i];
            for rel in 0..3usize {
                let expect = prefix.iter().filter(|w| w.0 == rel).count();
                prop_assert_eq!(snap.table(RelId(rel)).len(), expect, "snapshot {} rel {}", i, rel);
            }
            if i > 0 {
                let touched = writes[i - 1].0;
                for rel in 0..3usize {
                    let same = Arc::ptr_eq(snapshots[i - 1].shard(RelId(rel)), snap.shard(RelId(rel)));
                    prop_assert_eq!(same, rel != touched, "shard {} sharing across write {}", rel, i);
                }
            }
        }
    }

    /// Two cached plans with disjoint read sets (edge-only and label-only):
    /// each random write revalidates at most the plan that reads the
    /// written relation; the other's counters must not move. `audit`
    /// writes revalidate neither.
    #[test]
    fn cache_revalidates_iff_a_read_relation_moved(
        writes in prop::collection::vec((0..3usize, any::<bool>(), 0..10i64, 0..10i64), 1..25),
    ) {
        let cat = catalog();
        let a = access(&cat);
        let mut db = Database::new(Arc::clone(&cat));
        db.build_indexes(&a);
        let server = Arc::new(Server::new(db, a.clone(), ServerConfig::default()));
        let mut session = server.session();

        let edge_q = SpcQuery::builder(Arc::clone(&cat), "out_edges")
            .atom("edge", "e")
            .eq_param(("e", "src"), "n")
            .project(("e", "dst"))
            .build()
            .unwrap();
        let label_q = SpcQuery::builder(Arc::clone(&cat), "labels")
            .atom("label", "l")
            .eq_param(("l", "node"), "n")
            .project(("l", "tag"))
            .build()
            .unwrap();
        let mut bind = BTreeMap::new();
        bind.insert("n".to_string(), Value::int(1));
        session.query(&edge_q, &bind).unwrap();
        session.query(&label_q, &bind).unwrap();
        prop_assert_eq!(server.cache_stats().misses, 2);

        let mut expected_revalidations = 0u64;
        for &(rel, bulk, x, y) in &writes {
            let row = row_for(rel, x, y);
            if bulk {
                server.bulk_update(|d| d.insert(RELS[rel], &row).unwrap());
            } else {
                server.insert(RELS[rel], &row).unwrap();
            }
            // Re-prepare both plans: only the one whose read set contains
            // the written relation may revalidate — audit writes touch
            // neither read set, so both lookups are pure hits.
            session.query(&edge_q, &bind).unwrap();
            session.query(&label_q, &bind).unwrap();
            if rel < 2 {
                expected_revalidations += 1;
            }
            let cs = server.cache_stats();
            prop_assert_eq!(cs.revalidations, expected_revalidations,
                "write to {} must revalidate {} plan(s)", RELS[rel], u64::from(rel < 2));
            prop_assert_eq!(cs.invalidations, 0);
            prop_assert_eq!(cs.misses, 2, "plans never recompiled");
        }
    }
}

/// Threaded stress: one writer per relation hammers its own shard through
/// the maintained single-writer path while reader threads take snapshots
/// and assert (a) the snapshot's vector clock and row counts are frozen,
/// (b) cross-relation reads are mutually consistent — the edge writer
/// inserts an `edge` row and a matching `audit` row under one
/// `bulk_update`, so in *every* snapshot the two relations agree — and
/// (c) cached plans keep serving without recompilation. Run in release
/// mode in CI (`cargo test --release --test sharded_snapshot_proptest`).
#[test]
fn threaded_snapshot_consistency_stress() {
    let cat = catalog();
    let a = access(&cat);
    let mut db = Database::new(Arc::clone(&cat));
    db.build_indexes(&a);
    let server = Arc::new(Server::new(db, a.clone(), ServerConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let rounds: i64 = if cfg!(debug_assertions) { 150 } else { 600 };

    // Warm the plan cache so readers ride it throughout.
    let edge_q = SpcQuery::builder(Arc::clone(&cat), "out_edges")
        .atom("edge", "e")
        .eq_param(("e", "src"), "n")
        .project(("e", "dst"))
        .build()
        .unwrap();
    let mut bind = BTreeMap::new();
    bind.insert("n".to_string(), Value::int(1));
    server.session().query(&edge_q, &bind).unwrap();

    let mut handles = Vec::new();
    // Writer 1: paired edge+audit rows in one atomic write — the
    // cross-relation invariant every snapshot must preserve.
    {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            for i in 0..rounds {
                server.bulk_update(|d| {
                    d.insert("edge", &[Value::int(i % 7), Value::int(i)])
                        .unwrap();
                    d.insert("audit", &[Value::int(i), Value::str(format!("n{i}"))])
                        .unwrap();
                });
            }
        }));
    }
    // Writer 2: label rows through the maintained path, its own shard.
    {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            for i in 0..rounds {
                server
                    .insert("label", &[Value::int(i % 5), Value::str(format!("t{i}"))])
                    .unwrap();
            }
        }));
    }
    // Readers: frozen vector clocks + the paired-row invariant.
    let mut readers = Vec::new();
    for _ in 0..2 {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let (edge_q, bind) = (edge_q.clone(), bind.clone());
        readers.push(std::thread::spawn(move || {
            let mut session = server.session();
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = server.snapshot();
                let clock: Vec<u64> = (0..3).map(|i| snap.epoch_of(RelId(i))).collect();
                let (e, l, au) = (
                    snap.table(RelId(0)).len(),
                    snap.table(RelId(1)).len(),
                    snap.table(RelId(2)).len(),
                );
                assert_eq!(
                    e, au,
                    "edge/audit written atomically: every snapshot agrees"
                );
                std::thread::yield_now();
                // Nothing about the held snapshot moves.
                assert_eq!(snap.table(RelId(0)).len(), e);
                assert_eq!(snap.table(RelId(1)).len(), l);
                for (i, &frozen) in clock.iter().enumerate() {
                    assert_eq!(snap.epoch_of(RelId(i)), frozen);
                }
                assert!(snap.epoch() >= *clock.iter().max().unwrap());
                let resp = session.query(&edge_q, &bind).unwrap();
                assert!(resp.stats.cache_hit, "reader rides the cached plan");
                served += 1;
            }
            served
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }

    let end = server.snapshot();
    assert_eq!(end.table(RelId(0)).len(), rounds as usize);
    assert_eq!(end.table(RelId(1)).len(), rounds as usize);
    assert_eq!(end.table(RelId(2)).len(), rounds as usize);
    assert_eq!(
        server.cache_stats().misses,
        1,
        "one compile served everyone"
    );
    assert_eq!(server.cache_stats().invalidations, 0);
}
