//! Record framing: `[u32 len][u32 crc][payload]`, little-endian, with a
//! hand-rolled CRC-32 (IEEE) over the payload.
//!
//! Decoding distinguishes the two ways a log can be damaged:
//!
//! * A **torn tail** — the stream ends mid-record (short header, or fewer
//!   than `len` payload bytes). That is what an interrupted append looks
//!   like, so the partial record is silently dropped and everything before
//!   it is used. [`decode_frames`] reports how many tail bytes were torn.
//! * **Corruption** — a record is fully present but its CRC does not
//!   match. That is never produced by a crash (crashes truncate); it means
//!   the stored bytes changed, and recovery must fail loudly rather than
//!   replay garbage. [`FrameError::Corrupt`] carries the byte offset of
//!   the offending record.

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Header bytes per frame: `u32` length + `u32` CRC.
pub const FRAME_HEADER: usize = 8;

/// Appends one framed record onto `out`.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(u32::try_from(payload.len()).expect("record too large")).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// A decoded stream damage that recovery must not replay through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A fully present record whose CRC does not match, at this byte
    /// offset of the stream.
    Corrupt {
        /// Byte offset of the record's frame header within the stream.
        offset: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Corrupt { offset } => {
                write!(f, "CRC mismatch on record at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Every intact frame of `bytes`, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFrames<'a> {
    /// `(start offset, end offset, payload)` of each intact record; the
    /// end offset is where the next frame header begins.
    pub frames: Vec<(usize, usize, &'a [u8])>,
    /// Bytes of torn (incomplete) final record dropped from the tail.
    pub torn_bytes: usize,
}

/// Splits a stream into its intact frames, dropping a torn tail and
/// refusing corruption (see the module docs for the distinction).
pub fn decode_frames(bytes: &[u8]) -> Result<DecodedFrames<'_>, FrameError> {
    let mut frames = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER {
            return Ok(DecodedFrames {
                frames,
                torn_bytes: remaining,
            });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if remaining < FRAME_HEADER + len {
            return Ok(DecodedFrames {
                frames,
                torn_bytes: remaining,
            });
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            return Err(FrameError::Corrupt { offset: pos });
        }
        let end = pos + FRAME_HEADER + len;
        frames.push((pos, end, payload));
        pos = end;
    }
    Ok(DecodedFrames {
        frames,
        torn_bytes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"alpha");
        append_frame(&mut buf, b"");
        append_frame(&mut buf, b"beta-record");
        let decoded = decode_frames(&buf).unwrap();
        let payloads: Vec<&[u8]> = decoded.frames.iter().map(|&(_, _, p)| p).collect();
        assert_eq!(payloads, vec![&b"alpha"[..], &b""[..], &b"beta-record"[..]]);
        assert_eq!(decoded.torn_bytes, 0);
        assert_eq!(decoded.frames.last().unwrap().1, buf.len());
    }

    #[test]
    fn torn_tail_is_dropped_at_every_truncation_point() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first");
        let keep = buf.len();
        append_frame(&mut buf, b"second-record");
        // Every strict prefix that cuts into the second record decodes to
        // just the first, reporting the torn byte count.
        for cut in keep..buf.len() {
            let decoded = decode_frames(&buf[..cut]).unwrap();
            assert_eq!(decoded.frames.len(), 1, "cut at {cut}");
            assert_eq!(decoded.torn_bytes, cut - keep, "cut at {cut}");
        }
    }

    #[test]
    fn corruption_is_loud_with_the_offending_offset() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first");
        let second_at = buf.len();
        append_frame(&mut buf, b"second");
        append_frame(&mut buf, b"third");
        // Flip one payload byte of the middle record.
        buf[second_at + FRAME_HEADER] ^= 0x01;
        assert_eq!(
            decode_frames(&buf),
            Err(FrameError::Corrupt { offset: second_at })
        );
    }
}
