//! Differential proof of the chunked bulk-ingest fast path: the final
//! state a [`Database::bulk_loader`] load reaches — tables, index
//! postings (down to rids and witness lists), symbol table contents and
//! the epoch vector — must be indistinguishable from the slow paths it
//! replaces:
//!
//! * vs. row-at-a-time [`Database::insert_maintained`]: same decoded
//!   rows in the same rid order, same decoded index postings and witness
//!   promotion, same interned values. (Epoch *magnitudes* legitimately
//!   differ — that is the point of the fast path: one commit per load
//!   instead of one per row — but the vector-clock shape must agree:
//!   untouched relations' components stay put in both.)
//! * vs. the per-row [`Database::loader`] bulk path: bit-for-bit
//!   identical epochs and decoded state — both are one-commit bulk
//!   brackets, so nothing may distinguish them.
//! * across a WAL crash: replaying a large chunked load (big enough to
//!   dispatch the sort-based index build) reproduces the live database
//!   exactly — raw cells included, because replay re-applies the logged
//!   intern records in id order — and a cut inside the chunk stream
//!   discards the torn load, landing back on the pre-load boundary.
//!
//! * vs. the **parallel** ingest pool ([`bcq_workload::load_range_par`]):
//!   workers generate and pre-encode chunks concurrently, but the
//!   installer interns and appends strictly in chunk order — so rows,
//!   postings, witnesses, the **raw symbol-id assignment**, the epoch
//!   vector, and the emitted WAL byte stream must all be bit-for-bit
//!   what the serial [`bcq_workload::load_range`] pass produces.
//!
//! Random interleavings of chunked loads with every other mutation kind
//! (and random cut points) are covered by `recovery_differential_proptest`;
//! this file is the deterministic, state-complete comparison.

use bounded_cq::durability::{recover, LogStorage, MemLog, SyncPolicy, WalWriter};
use bounded_cq::prelude::*;
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    Catalog::from_names(&[("r", &["a", "b", "c"]), ("untouched", &["x", "y"])]).unwrap()
}

fn access() -> AccessSchema {
    let mut a = AccessSchema::new(catalog());
    a.add("r", &["a"], &["b"], 64).unwrap();
    a.add("r", &["b"], &["a", "c"], 64).unwrap();
    a.add("untouched", &["x"], &["y"], 8).unwrap();
    a
}

/// Mixed-representation rows: small ints (inline cells), strings and wide
/// ints (both interned), and nulls — every encode path the loaders take.
fn row(i: i64) -> Vec<Value> {
    vec![
        Value::int(i % 7),
        Value::str(format!("s{}", i % 5)),
        match i % 11 {
            0 => Value::int(i64::MAX - i % 3),
            1 => Value::Null,
            _ => Value::int(i % 13),
        },
    ]
}

/// Splits `rows[..]` into column vectors for one chunk.
fn columns_of(chunk: &[Vec<Value>]) -> Vec<Vec<Value>> {
    (0..chunk[0].len())
        .map(|c| chunk.iter().map(|r| r[c].clone()).collect())
        .collect()
}

/// Everything observable about a relation, decoded so it is independent of
/// symbol-id assignment order (column-at-a-time interning hands out ids in
/// a different order than row-at-a-time; the *values* must agree).
#[derive(Debug, PartialEq)]
struct DecodedRel {
    rows: Vec<Vec<Value>>,
    /// Per index `(x, y)`: entries as (decoded key, rids, witness rids),
    /// sorted by the key's debug rendering for a canonical order.
    #[allow(clippy::type_complexity)]
    indexes: Vec<(
        Vec<usize>,
        Vec<usize>,
        Vec<(Vec<Value>, Vec<u32>, Vec<u32>)>,
    )>,
}

fn decoded(db: &Database, rel: RelId) -> DecodedRel {
    let shard = db.shard(rel);
    let indexes = shard
        .index_specs()
        .map(|(x, y)| {
            let idx = shard.index(x, y).expect("spec lists a built index");
            let mut entries: Vec<(Vec<Value>, Vec<u32>, Vec<u32>)> = idx
                .entries()
                .map(|(k, p)| (db.decode_row(k), p.all.clone(), p.witnesses.clone()))
                .collect();
            entries.sort_by_key(|(k, _, _)| format!("{k:?}"));
            (x.to_vec(), y.to_vec(), entries)
        })
        .collect();
    DecodedRel {
        rows: db.value_rows(rel).collect(),
        indexes,
    }
}

/// The symbol table's contents as order-independent sets.
fn symbol_contents(db: &Database) -> (Vec<String>, Vec<i64>) {
    let mut strings: Vec<String> = db.symbols().strings().map(str::to_owned).collect();
    strings.sort();
    let mut wides = db.symbols().wide_ints().to_vec();
    wides.sort_unstable();
    (strings, wides)
}

/// Per-relation piece of [`raw_dump`]: epoch, decoded rows, index count.
type RelDump = (u64, Vec<Vec<Value>>, usize);

/// Raw (cell-level) dump used for the crash-replay comparison, where
/// recovery must reproduce even the symbol-id assignment.
fn raw_dump(db: &Database) -> (u64, Vec<RelDump>) {
    let rels = (0..db.num_relations())
        .map(|i| {
            let rel = RelId(i);
            (
                db.epoch_of(rel),
                db.value_rows(rel).collect(),
                db.shard(rel).index_specs().count(),
            )
        })
        .collect();
    (db.epoch(), rels)
}

// 10_000 rows: above the sort-build threshold (2^13 cells in the widest
// index input), so the bulk side's deferred build dispatches to the
// sort-based constructor while the maintained side built row by row.
const N: i64 = 10_000;
const CHUNK: usize = 1_024;

#[test]
fn chunked_bulk_load_matches_row_at_a_time_insert_maintained() {
    let a = access();
    let rows: Vec<Vec<Value>> = (0..N).map(row).collect();

    // Slow path: indices first, then N maintained inserts (each one a
    // commit, each one maintaining every index in place).
    let mut slow = Database::new(catalog());
    slow.build_indexes(&a);
    let untouched_epoch = slow.epoch_of(RelId(1));
    for r in &rows {
        slow.insert_maintained("r", r).unwrap();
    }

    // Fast path: one chunked bulk bracket, then one deferred index build.
    let mut fast = Database::new(catalog());
    fast.build_indexes(&a);
    let stats = {
        let mut b = fast.bulk_loader(RelId(0));
        b.reserve_rows(rows.len());
        for chunk in rows.chunks(CHUNK) {
            b.push_chunk_columns(&columns_of(chunk));
        }
        b.stats()
    };
    fast.build_indexes(&a);

    assert_eq!(stats.rows, N as u64);
    assert_eq!(stats.chunks, (rows.len() as u64).div_ceil(CHUNK as u64));

    // Tables, postings (rids + witnesses) and interned values must be
    // indistinguishable.
    assert_eq!(decoded(&fast, RelId(0)), decoded(&slow, RelId(0)));
    assert_eq!(symbol_contents(&fast), symbol_contents(&slow));

    // Vector-clock shape: the load touched exactly one component — the
    // untouched relation's epoch sits at its index-build stamp on both
    // paths (its index survives the second `build_indexes`, which only
    // rebuilds what the bulk bracket dropped), and each path's global
    // epoch equals its touched component (nothing moved after).
    assert_eq!(fast.epoch_of(RelId(1)), untouched_epoch);
    assert_eq!(slow.epoch_of(RelId(1)), untouched_epoch);
    assert_eq!(fast.epoch(), fast.epoch_of(RelId(0)));
    assert_eq!(slow.epoch(), slow.epoch_of(RelId(0)));
    // And the fast path collapsed the load into O(1) commits — the whole
    // point — while the slow path paid one per row.
    assert!(fast.epoch() < slow.epoch());
}

#[test]
fn chunked_bulk_load_is_indistinguishable_from_the_per_row_loader() {
    let rows: Vec<Vec<Value>> = (0..N).map(row).collect();
    let a = access();

    let mut per_row = Database::new(catalog());
    {
        let mut l = per_row.loader(RelId(0));
        for r in &rows {
            l.push(r);
        }
    }
    per_row.build_indexes(&a);

    let mut chunked = Database::new(catalog());
    {
        let mut b = chunked.bulk_loader(RelId(0));
        b.reserve_rows(rows.len());
        for chunk in rows.chunks(CHUNK) {
            b.push_chunk_columns(&columns_of(chunk));
        }
    }
    chunked.build_indexes(&a);

    // Both are one-commit bulk brackets: the epoch vector must be equal
    // component for component, not just shaped alike.
    assert_eq!(chunked.epoch(), per_row.epoch());
    for i in 0..chunked.num_relations() {
        assert_eq!(chunked.epoch_of(RelId(i)), per_row.epoch_of(RelId(i)));
    }
    assert_eq!(decoded(&chunked, RelId(0)), decoded(&per_row, RelId(0)));
    assert_eq!(symbol_contents(&chunked), symbol_contents(&per_row));
}

#[test]
fn crash_replay_of_a_large_chunked_load_reproduces_the_live_state() {
    let cat = catalog();
    let a = access();
    let rows: Vec<Vec<Value>> = (0..N).map(row).collect();

    let log = Arc::new(MemLog::new());
    let writer = Arc::new(WalWriter::new(
        Arc::clone(&log) as Arc<dyn LogStorage>,
        SyncPolicy::Manual,
        1,
    ));
    let mut db = Database::new(Arc::clone(&cat));
    db.set_wal(Some(writer));
    db.build_indexes(&a);
    let pre_load = raw_dump(&db);
    let pre_load_bytes = log.unsynced_bytes();

    {
        let mut b = db.bulk_loader(RelId(0));
        b.reserve_rows(rows.len());
        for chunk in rows.chunks(CHUNK) {
            b.push_chunk_columns(&columns_of(chunk));
        }
    }
    db.build_indexes(&a);

    // Full-log recovery: the replayed database must equal the live one
    // exactly — same rows, same epochs, same rebuilt index specs — and
    // the decoded index state must match too.
    let (replayed, report) = recover(&*log, Arc::clone(&cat)).unwrap();
    assert_eq!(report.torn_bytes, 0);
    assert_eq!(raw_dump(&replayed), raw_dump(&db));
    assert_eq!(decoded(&replayed, RelId(0)), decoded(&db, RelId(0)));
    // Replay applies intern records in logged id order, so even the raw
    // symbol-id assignment survives the round trip.
    assert_eq!(
        db.symbols().strings().collect::<Vec<_>>(),
        replayed.symbols().strings().collect::<Vec<_>>()
    );
    assert_eq!(db.symbols().wide_ints(), replayed.symbols().wide_ints());

    // Cut mid-load: the torn bulk bracket (BulkBegin, some chunks, no
    // BulkEnd) is discarded whole — recovery lands on the pre-load state.
    let total = log.unsynced_bytes();
    log.crash(pre_load_bytes + (total - pre_load_bytes) / 2);
    let (truncated, _) = recover(&*log, cat).unwrap();
    assert_eq!(raw_dump(&truncated), pre_load);
}

/// The same mixed-representation rows as [`row`], with a slow stream of
/// fresh tail symbols so interning keeps happening deep into the load —
/// workers must keep hitting values their pre-encode handle has not seen.
fn par_row(i: i64) -> Vec<Value> {
    let mut r = row(i);
    if i % 11 == 2 {
        r[2] = Value::str(format!("tail{}", i / 97));
    }
    r
}

#[test]
fn parallel_ingest_is_bit_identical_to_the_serial_loader() {
    use bounded_cq::workload::source::rows as row_source;
    use bounded_cq::workload::{load_range_par, ParLoadOptions};

    let cat = catalog();
    let a = access();
    let src = row_source(RelId(0), 3, N as u64, |i, out| {
        out.extend(par_row(i as i64));
    });

    // The serial oracle: one WAL-attached store, one chunked streaming
    // pass, indices rebuilt after.
    let boot = || {
        let log = Arc::new(MemLog::new());
        let writer = Arc::new(WalWriter::new(
            Arc::clone(&log) as Arc<dyn LogStorage>,
            SyncPolicy::Manual,
            1,
        ));
        let mut db = Database::new(Arc::clone(&cat));
        db.set_wal(Some(writer));
        db.build_indexes(&a);
        (log, db)
    };
    let (serial_log, mut serial) = boot();
    let serial_stats =
        bounded_cq::workload::source::load_range(&mut serial, src.as_ref(), 0, N as u64, CHUNK);
    serial.build_indexes(&a);

    for threads in [2, 3, 5] {
        let (par_log, mut par) = boot();
        let par_stats = load_range_par(
            &mut par,
            src.as_ref(),
            0,
            N as u64,
            ParLoadOptions {
                threads,
                chunk_rows: CHUNK,
            },
        );
        par.build_indexes(&a);

        assert_eq!(par_stats, serial_stats, "threads={threads}");
        // Epoch vector + decoded rows, index postings down to rids and
        // witnesses, and the raw symbol-id assignment (not just the
        // symbol *set*: in-order install must reproduce serial interning
        // exactly).
        assert_eq!(raw_dump(&par), raw_dump(&serial), "threads={threads}");
        assert_eq!(
            decoded(&par, RelId(0)),
            decoded(&serial, RelId(0)),
            "threads={threads}"
        );
        assert_eq!(
            par.symbols().strings().collect::<Vec<_>>(),
            serial.symbols().strings().collect::<Vec<_>>()
        );
        assert_eq!(par.symbols().wide_ints(), serial.symbols().wide_ints());
        // The WAL streams are byte-identical, so crash recovery of a
        // parallel load is *the same proof* as the serial one above.
        assert_eq!(par_log.unsynced_bytes(), serial_log.unsynced_bytes());
        let (from_par, _) = recover(&*par_log, Arc::clone(&cat)).unwrap();
        let (from_serial, _) = recover(&*serial_log, Arc::clone(&cat)).unwrap();
        assert_eq!(raw_dump(&from_par), raw_dump(&from_serial));
    }
}
