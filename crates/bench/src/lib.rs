#![warn(missing_docs)]
//! # bcq-bench — the Section 6 experiment harness
//!
//! One function per experiment of the paper's evaluation:
//!
//! * [`scale_sweep`] — Figures 5(a)/(e)/(i): vary `|D|`.
//! * [`acc_sweep`] — Figures 5(b)/(f)/(j): vary `‖A‖` from 12 to 20.
//! * [`sel_sweep`] — Figures 5(c)/(g)/(k): bucket by `#-sel`.
//! * [`prod_sweep`] — Figures 5(d)/(h)/(l): bucket by `#-prod`.
//! * [`table1`] — Table 1: worst-case elapsed time of `BCheck`, `EBCheck`,
//!   `findDPh`, `QPlan` per dataset.
//! * [`headline`] — the "35 of 45 queries are effectively bounded" summary.
//!
//! The Criterion benches under `benches/` and the `figures` binary both
//! drive these. Baseline runs are capped by a **work budget** (touched
//! rows), the deterministic analogue of the paper's 2 500 s cap; rows the
//! baseline could not finish within budget are reported as `DNF`, matching
//! the missing MySQL points in Figure 5.

use bcq_core::bcheck::bcheck;
use bcq_core::dominating::{find_dp, DominatingConfig};
use bcq_core::ebcheck::ebcheck;
use bcq_core::prelude::AccessSchema;
use bcq_core::qplan::qplan;
use bcq_exec::{baseline, eval_dq, BaselineMode, BaselineOptions, BaselineOutcome};
use bcq_storage::Database;
use bcq_workload::Dataset;
use std::time::{Duration, Instant};

/// Default baseline work budget (touched rows) — sits inside the swept
/// `|D|` range so the baseline starts DNF-ing as data grows, like MySQL's
/// 2 500 s cap did.
pub const DEFAULT_BUDGET: u64 = 150_000;

/// One measured point of a Figure 5 panel.
#[derive(Debug, Clone)]
pub struct PanelRow {
    /// X-axis label (scale, `‖A‖`, `#-sel`, `#-prod`).
    pub x: String,
    /// `|D|` of the database the row ran on.
    pub d_tuples: u64,
    /// Mean `evalDQ` wall time over the queries of the row.
    pub eval_dq: Duration,
    /// Mean `|D_Q|` (tuples fetched) over the queries of the row.
    pub dq_tuples: f64,
    /// Mean baseline wall time over *finished* queries (`None` if every
    /// query hit the budget).
    pub baseline: Option<Duration>,
    /// Fraction of queries the baseline finished within budget.
    pub baseline_finished: f64,
    /// Number of queries aggregated.
    pub queries: usize,
}

impl PanelRow {
    fn format_header() -> String {
        format!(
            "{:>10} {:>12} {:>12} {:>10} {:>16} {:>8}",
            "x", "|D|", "evalDQ", "|DQ|", "baseline", "#q"
        )
    }

    fn format(&self) -> String {
        let base = match self.baseline {
            Some(d) if self.baseline_finished >= 1.0 => format!("{:>16.2?}", d),
            Some(d) => format!("{:>9.2?} ({:.0}%)", d, self.baseline_finished * 100.0),
            None => format!("{:>16}", "DNF"),
        };
        format!(
            "{:>10} {:>12} {:>12.2?} {:>10.0} {} {:>8}",
            self.x, self.d_tuples, self.eval_dq, self.dq_tuples, base, self.queries
        )
    }
}

/// Renders rows as a text table (what EXPERIMENTS.md embeds).
pub fn render_panel(title: &str, rows: &[PanelRow]) -> String {
    let mut out = format!("## {title}\n{}\n", PanelRow::format_header());
    for r in rows {
        out.push_str(&r.format());
        out.push('\n');
    }
    out
}

/// Evaluates the given queries on `db`, returning the aggregated row.
pub fn measure(
    x: String,
    db: &Database,
    access: &AccessSchema,
    queries: &[&bcq_workload::WorkloadQuery],
    budget: u64,
) -> PanelRow {
    let mut eval_total = Duration::ZERO;
    let mut dq_total = 0u64;
    let mut base_total = Duration::ZERO;
    let mut base_finished = 0usize;
    let mut n = 0usize;
    for wq in queries {
        let Ok(plan) = qplan(&wq.query, access) else {
            continue;
        };
        let out = eval_dq(db, &plan, access).expect("bounded evaluation succeeds");
        eval_total += out.elapsed;
        dq_total += out.dq_tuples();
        n += 1;

        let opts = BaselineOptions {
            mode: BaselineMode::ConstIndex,
            work_budget: Some(budget),
        };
        match baseline(db, &wq.query, access, opts).expect("ground query") {
            BaselineOutcome::Completed {
                result, elapsed, ..
            } => {
                assert_eq!(
                    result,
                    out.result,
                    "baseline and evalDQ disagree on {}",
                    wq.query.name()
                );
                base_total += elapsed;
                base_finished += 1;
            }
            BaselineOutcome::DidNotFinish { .. } => {}
        }
    }
    PanelRow {
        x,
        d_tuples: db.total_tuples() as u64,
        eval_dq: eval_total.checked_div(n.max(1) as u32).unwrap_or_default(),
        dq_tuples: dq_total as f64 / n.max(1) as f64,
        baseline: (base_finished > 0).then(|| base_total / base_finished as u32),
        baseline_finished: base_finished as f64 / n.max(1) as f64,
        queries: n,
    }
}

/// Figure 5(a)/(e)/(i): vary `|D|` over the dataset's scale ladder; run all
/// effectively bounded queries at each point.
pub fn scale_sweep(ds: &Dataset, budget: u64) -> Vec<PanelRow> {
    let queries: Vec<_> = ds.effectively_bounded_queries().collect();
    ds.scale_ladder
        .iter()
        .map(|&scale| {
            let db = ds.build(scale);
            measure(format!("{scale}"), &db, &ds.access, &queries, budget)
        })
        .collect()
}

/// Figure 5(b)/(f)/(j): vary `‖A‖` from 12 to 20 (prefixes of the curated
/// constraint order); per point, run the queries effectively bounded under
/// that prefix.
pub fn acc_sweep(ds: &Dataset, budget: u64) -> Vec<PanelRow> {
    let db = ds.build(ds.default_scale);
    (12..=20.min(ds.access.len()))
        .map(|k| {
            let sub = ds.access.prefix(k);
            let queries: Vec<_> = ds
                .queries
                .iter()
                .filter(|w| ebcheck(&w.query, &sub).effectively_bounded)
                .collect();
            measure(format!("{k}"), &db, &sub, &queries, budget)
        })
        .collect()
}

/// Figure 5(c)/(g)/(k): bucket the effectively bounded queries by `#-sel`.
pub fn sel_sweep(ds: &Dataset, budget: u64) -> Vec<PanelRow> {
    let db = ds.build(ds.default_scale);
    (4..=8usize)
        .filter_map(|nsel| {
            let queries: Vec<_> = ds
                .effectively_bounded_queries()
                .filter(|w| w.query.num_sel() == nsel)
                .collect();
            if queries.is_empty() {
                return None;
            }
            Some(measure(
                format!("{nsel}"),
                &db,
                &ds.access,
                &queries,
                budget,
            ))
        })
        .collect()
}

/// Figure 5(d)/(h)/(l): bucket the effectively bounded queries by `#-prod`.
pub fn prod_sweep(ds: &Dataset, budget: u64) -> Vec<PanelRow> {
    let db = ds.build(ds.default_scale);
    (0..=4usize)
        .filter_map(|nprod| {
            let queries: Vec<_> = ds
                .effectively_bounded_queries()
                .filter(|w| w.query.num_prod() == nprod)
                .collect();
            if queries.is_empty() {
                return None;
            }
            Some(measure(
                format!("{nprod}"),
                &db,
                &ds.access,
                &queries,
                budget,
            ))
        })
        .collect()
}

/// Table 1: longest elapsed time of each analysis algorithm across the
/// dataset's 15 queries.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Worst-case `BCheck` time.
    pub bcheck: Duration,
    /// Worst-case `EBCheck` time.
    pub ebcheck: Duration,
    /// Worst-case `findDPh` time.
    pub find_dp: Duration,
    /// Worst-case `QPlan` time.
    pub qplan: Duration,
}

/// Runs Table 1 for one dataset.
pub fn table1(ds: &Dataset) -> Table1Row {
    let mut row = Table1Row {
        dataset: ds.name,
        bcheck: Duration::ZERO,
        ebcheck: Duration::ZERO,
        find_dp: Duration::ZERO,
        qplan: Duration::ZERO,
    };
    for wq in &ds.queries {
        let t = Instant::now();
        let _ = bcheck(&wq.query, &ds.access);
        row.bcheck = row.bcheck.max(t.elapsed());

        let t = Instant::now();
        let _ = ebcheck(&wq.query, &ds.access);
        row.ebcheck = row.ebcheck.max(t.elapsed());

        let t = Instant::now();
        let _ = find_dp(&wq.query, &ds.access, DominatingConfig::default());
        row.find_dp = row.find_dp.max(t.elapsed());

        let t = Instant::now();
        let _ = qplan(&wq.query, &ds.access);
        row.qplan = row.qplan.max(t.elapsed());
    }
    row
}

/// Renders Table 1 rows.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = format!(
        "## Table 1: worst-case algorithm time per dataset\n{:>10} {:>12} {:>12} {:>12} {:>12}\n",
        "dataset", "BCheck", "EBCheck", "findDPh", "QPlan"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>12.2?} {:>12.2?} {:>12.2?} {:>12.2?}\n",
            r.dataset, r.bcheck, r.ebcheck, r.find_dp, r.qplan
        ));
    }
    out
}

/// The Section 6 headline: how many workload queries are effectively
/// bounded under each access schema.
pub fn headline() -> String {
    let mut out = String::from("## Effectively bounded queries (paper: 35/45, 77%)\n");
    let mut eb_total = 0;
    let mut total = 0;
    for ds in bcq_workload::all_datasets() {
        let eb = ds
            .queries
            .iter()
            .filter(|w| ebcheck(&w.query, &ds.access).effectively_bounded)
            .count();
        out.push_str(&format!("{:>8}: {eb}/{}\n", ds.name, ds.queries.len()));
        eb_total += eb;
        total += ds.queries.len();
    }
    out.push_str(&format!("{:>8}: {eb_total}/{total}\n", "total"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_sweep_is_flat_for_eval_dq() {
        // Use TPCH at two small scales: evalDQ's |DQ| must stay flat.
        let ds = bcq_workload::tpch::dataset();
        let queries: Vec<_> = ds.effectively_bounded_queries().collect();
        let db1 = ds.build(0.25);
        let db2 = ds.build(2.0);
        let r1 = measure("s".into(), &db1, &ds.access, &queries, DEFAULT_BUDGET);
        let r2 = measure("l".into(), &db2, &ds.access, &queries, DEFAULT_BUDGET);
        assert_eq!(r1.queries, 11);
        assert!(
            (r1.dq_tuples - r2.dq_tuples).abs() / r1.dq_tuples.max(1.0) < 0.35,
            "dq {} vs {}",
            r1.dq_tuples,
            r2.dq_tuples
        );
        assert!(r2.d_tuples > r1.d_tuples * 2);
    }

    #[test]
    fn acc_sweep_improves_with_more_constraints() {
        let ds = bcq_workload::mot::dataset();
        let rows = acc_sweep(&ds, DEFAULT_BUDGET);
        assert_eq!(rows.len(), 9); // 12..=20
        for w in rows.windows(2) {
            assert!(w[1].queries >= w[0].queries);
        }
    }

    #[test]
    fn table1_reports_all_algorithms() {
        let ds = bcq_workload::tpch::dataset();
        let row = table1(&ds);
        assert_eq!(row.dataset, "TPCH");
        // Paper: everything under 2.1 s on similar-size inputs.
        assert!(row.qplan < Duration::from_secs(2));
    }

    #[test]
    fn headline_counts_35_of_45() {
        let text = headline();
        assert!(text.contains("35/45"), "{text}");
    }

    #[test]
    fn render_smoke() {
        let ds = bcq_workload::tpch::dataset();
        let db = ds.build(0.25);
        let queries: Vec<_> = ds.effectively_bounded_queries().take(2).collect();
        let row = measure("x".into(), &db, &ds.access, &queries, 10);
        let text = render_panel("panel", &[row]);
        assert!(text.contains("evalDQ"));
    }
}
