//! Row-major in-memory tables over interned cells.
//!
//! Tables store [`Cell`]s — fixed-width interned values — contiguously.
//! All value-level I/O (inserting `Value` rows, decoding rows back) goes
//! through [`crate::database::Database`], which owns the
//! [`bcq_core::symbols::SymbolTable`] the cells are encoded against.

use bcq_core::prelude::{Cell, RelId};

/// One relation instance: rows of cells stored contiguously (row-major)
/// for cache locality during scans.
#[derive(Debug, Clone)]
pub struct Table {
    rel: RelId,
    arity: usize,
    data: Vec<Cell>,
}

impl Table {
    /// Creates an empty table for relation `rel` with `arity` columns.
    pub fn new(rel: RelId, arity: usize) -> Self {
        assert!(arity > 0, "tables must have at least one column");
        Table {
            rel,
            arity,
            data: Vec::new(),
        }
    }

    /// The relation this table instantiates.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a row of cells (must match the arity).
    pub fn push(&mut self, row: &[Cell]) {
        assert_eq!(row.len(), self.arity, "arity mismatch on insert");
        self.data.extend_from_slice(row);
    }

    /// Reserves space for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.arity);
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[Cell] {
        let start = i * self.arity;
        &self.data[start..start + self.arity]
    }

    /// Iterates over all rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Cell]> + '_ {
        self.data.chunks_exact(self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(vals: &[i64]) -> Vec<Cell> {
        vals.iter()
            .map(|&v| Cell::from_small_int(v).unwrap())
            .collect()
    }

    #[test]
    fn push_and_read() {
        let mut t = Table::new(RelId(0), 2);
        t.push(&cells(&[1, 10]));
        t.push(&cells(&[2, 20]));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.row(0), cells(&[1, 10]).as_slice());
        assert_eq!(t.row(1), cells(&[2, 20]).as_slice());
        assert_eq!(t.rows().count(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(RelId(0), 2);
        t.push(&cells(&[1]));
    }

    #[test]
    fn rows_iterator_is_exact_size() {
        let mut t = Table::new(RelId(1), 3);
        for i in 0..10 {
            t.push(&[
                Cell::from_small_int(i).unwrap(),
                Cell::from_small_int(i * 2).unwrap(),
                Cell::NULL,
            ]);
        }
        let it = t.rows();
        assert_eq!(it.len(), 10);
    }
}
