//! The chunked bulk-ingest fast path: [`BulkLoader`], returned by
//! [`crate::Database::bulk_loader`].
//!
//! The row-at-a-time [`crate::Loader`] pays four per-row costs that
//! dominate at the tens-of-millions-of-rows scale: a per-cell
//! encode/intern decision against the copy-on-write symbol table, a
//! per-row `Vec` append, a per-row WAL record (framing + sequencing +
//! crc), and — once indices are rebuilt — a per-row hash-map insertion.
//! `BulkLoader` amortizes the first three over whole chunks:
//!
//! * **Batch symbol interning.** Each chunk column is encoded with one
//!   read-only [`SymbolTable::try_encode_into`] pass; only a suffix that
//!   actually contains unseen values falls back to the interning path
//!   (one `Arc::make_mut`, not one per cell). Steady-state chunks — all
//!   values seen before — never touch the shared table, and are counted
//!   as *batch hits* in [`IngestStats`].
//! * **Column-at-a-time appends.** The chunk lands in the row-major table
//!   through [`crate::Table::append_columns`]: one exact reservation,
//!   then one strided pass per column.
//! * **Amortized WAL records.** One framed [`WalOp::BulkChunk`] per chunk
//!   instead of one `BulkRow` per row; the record's payload is read
//!   straight back out of the freshly appended table region, so no
//!   row-major copy of the chunk is ever materialized.
//!
//! The fourth cost — index build — is addressed separately by the
//! sort-based construction mode in [`crate::index`], which the deferred
//! `build_indexes` call after a bulk load dispatches to on large tables.

use crate::database::log_new_interns;
use crate::table::Table;
use crate::wal::{WalOp, WalSink};
use bcq_core::prelude::{Cell, RelId, SymbolTable, Value};
use std::sync::Arc;

/// Running counters of one bulk load (see also the serving tier's ingest
/// metrics, which aggregate these across loads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Rows appended.
    pub rows: u64,
    /// Chunks appended (= WAL bulk-chunk records when a sink is attached).
    pub chunks: u64,
    /// Bytes of encoded cells appended (rows × arity × cell width).
    pub cell_bytes: u64,
    /// Chunks whose every value was already interned: the read-only batch
    /// encode covered them end to end without touching the symbol table.
    pub intern_batch_hits: u64,
}

/// Value-level chunked bulk loader returned by
/// [`crate::Database::bulk_loader`]; see the [module docs](self) for what
/// it amortizes over the row-at-a-time path.
pub struct BulkLoader<'a> {
    table: &'a mut Table,
    symbols: &'a mut Arc<SymbolTable>,
    wal: Option<&'a dyn WalSink>,
    rel: RelId,
    /// Reused per-column encode scratch (`arity` vectors).
    colbuf: Vec<Vec<Cell>>,
    /// Reused flat encode scratch for the row-major path.
    rowbuf: Vec<Cell>,
    stats: IngestStats,
}

impl BulkLoader<'_> {
    pub(crate) fn new<'a>(
        table: &'a mut Table,
        symbols: &'a mut Arc<SymbolTable>,
        wal: Option<&'a dyn WalSink>,
        rel: RelId,
    ) -> BulkLoader<'a> {
        let arity = table.arity();
        BulkLoader {
            table,
            symbols,
            wal,
            rel,
            colbuf: vec![Vec::new(); arity],
            rowbuf: Vec::new(),
            stats: IngestStats::default(),
        }
    }

    /// Reserves space for exactly `additional` more rows. Call once with
    /// the total row count before streaming chunks: bulk loads know their
    /// size up front, and one exact reservation avoids both the memcpy
    /// churn and the up-to-2× peak-memory overshoot of doubling growth.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.table.reserve_rows_exact(additional);
    }

    /// Appends one chunk given **column at a time**: `cols[c]` holds
    /// column `c`'s values for every row of the chunk (all columns the
    /// same length). This is the zero-transpose path for columnar row
    /// sources: each column is batch-encoded and written in one strided
    /// pass.
    pub fn push_chunk_columns(&mut self, cols: &[Vec<Value>]) {
        assert_eq!(
            cols.len(),
            self.table.arity(),
            "arity mismatch on chunk append"
        );
        let rows = cols[0].len();
        if rows == 0 {
            return;
        }
        let mut all_hit = true;
        for (c, col) in cols.iter().enumerate() {
            assert_eq!(col.len(), rows, "ragged chunk columns");
            self.colbuf[c].clear();
            all_hit &= encode_batch_logged(self.symbols, self.wal, col, &mut self.colbuf[c]);
        }
        let start = self.table.len();
        self.table.append_columns(&self.colbuf);
        self.log_appended(start, rows, all_hit);
    }

    /// Appends one chunk whose cells were already encoded against (any
    /// copy-on-write handle of) this database's symbol table — the
    /// parallel-ingest path, where worker threads pre-encode chunks
    /// against a shared [`crate::Database::shared_symbols`] handle and
    /// hand only fully-encoded (all values previously interned) chunks to
    /// the installer. Symbol ids are stable once assigned, so cells
    /// encoded against an older handle stay valid. Loads identically to
    /// [`Self::push_chunk_columns`] on the decoded values, batch-hit
    /// accounting included (no interning happened for this chunk).
    pub fn push_encoded_columns(&mut self, cols: &[Vec<Cell>]) {
        assert_eq!(
            cols.len(),
            self.table.arity(),
            "arity mismatch on chunk append"
        );
        let rows = cols[0].len();
        if rows == 0 {
            return;
        }
        for col in cols {
            assert_eq!(col.len(), rows, "ragged chunk columns");
        }
        let start = self.table.len();
        self.table.append_columns(cols);
        self.log_appended(start, rows, true);
    }

    /// Appends one chunk given as flat **row-major** values
    /// (`flat.len()` must be a multiple of the arity) — the replay-side
    /// and convenience path; same batch encoding and single WAL record as
    /// [`Self::push_chunk_columns`].
    pub fn push_rows(&mut self, flat: &[Value]) {
        let arity = self.table.arity();
        assert_eq!(flat.len() % arity, 0, "arity mismatch on chunk append");
        let rows = flat.len() / arity;
        if rows == 0 {
            return;
        }
        self.rowbuf.clear();
        let all_hit = encode_batch_logged(self.symbols, self.wal, flat, &mut self.rowbuf);
        let start = self.table.len();
        self.table.extend_cells(&self.rowbuf);
        self.log_appended(start, rows, all_hit);
    }

    /// Emits the WAL chunk record for rows appended at `start` and updates
    /// the counters. The record payload is read back out of the table's
    /// row-major storage — the appended region *is* the chunk.
    fn log_appended(&mut self, start: usize, rows: usize, all_hit: bool) {
        let arity = self.table.arity();
        let cells = &self.table.cells()[start * arity..];
        if let Some(sink) = self.wal {
            sink.record(WalOp::BulkChunk {
                rel: self.rel,
                rows: u32::try_from(rows).expect("chunk too large"),
                cells,
            });
        }
        self.stats.rows += rows as u64;
        self.stats.chunks += 1;
        self.stats.cell_bytes += std::mem::size_of_val(cells) as u64;
        self.stats.intern_batch_hits += u64::from(all_hit);
    }

    /// A shared read-only handle to the symbol table **as of now**.
    /// Parallel ingest workers pre-encode upcoming chunks against it:
    /// symbol ids are stable once assigned, so a handle stays a valid
    /// prefix of every later state and cells encoded against it remain
    /// correct however much interning happens in between (see
    /// [`Self::push_encoded_columns`]).
    pub fn shared_symbols(&self) -> Arc<SymbolTable> {
        Arc::clone(self.symbols)
    }

    /// Counters accumulated so far (read them before dropping the loader).
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Number of rows currently in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl Drop for BulkLoader<'_> {
    fn drop(&mut self) {
        // Close the WAL bracket: recovery discards a bulk load whose end
        // record never made it to the log (torn mid-load).
        if let Some(sink) = self.wal {
            sink.record(WalOp::BulkEnd { rel: self.rel });
        }
    }
}

/// Batch copy-on-write encode: one read-only pass over the whole batch;
/// only a suffix containing unseen values clones the symbol table (once)
/// and interns, logging the new symbols before returning. Returns `true`
/// when the read-only pass covered the entire batch.
fn encode_batch_logged(
    symbols: &mut Arc<SymbolTable>,
    wal: Option<&dyn WalSink>,
    vals: &[Value],
    out: &mut Vec<Cell>,
) -> bool {
    let hit = symbols.try_encode_into(vals, out);
    if hit == vals.len() {
        return true;
    }
    let (strings_before, wides_before) = (symbols.len(), symbols.num_wide_ints());
    Arc::make_mut(symbols).encode_into(&vals[hit..], out);
    if let Some(sink) = wal {
        log_new_interns(symbols, sink, strings_before, wides_before);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use bcq_core::access::AccessSchema;
    use bcq_core::prelude::Catalog;

    fn catalog() -> Arc<Catalog> {
        Catalog::from_names(&[("r", &["a", "b", "c"]), ("s", &["x"])]).unwrap()
    }

    fn row(i: i64) -> Vec<Value> {
        vec![
            Value::int(i % 7),
            Value::str(format!("s{}", i % 5)),
            if i % 11 == 0 {
                Value::int(i64::MAX - i)
            } else {
                Value::Null
            },
        ]
    }

    /// The ground truth: the same rows through the per-row loader.
    fn via_loader(rows: &[Vec<Value>]) -> Database {
        let mut db = Database::new(catalog());
        let mut l = db.loader(RelId(0));
        for r in rows {
            l.push(r);
        }
        drop(l);
        db
    }

    #[test]
    fn chunked_columns_match_per_row_loader_exactly() {
        let rows: Vec<Vec<Value>> = (0..100).map(row).collect();
        let oracle = via_loader(&rows);

        let mut db = Database::new(catalog());
        let mut b = db.bulk_loader(RelId(0));
        b.reserve_rows(rows.len());
        for chunk in rows.chunks(17) {
            let cols: Vec<Vec<Value>> = (0..3)
                .map(|c| chunk.iter().map(|r| r[c].clone()).collect())
                .collect();
            b.push_chunk_columns(&cols);
        }
        let stats = b.stats();
        drop(b);

        assert_eq!(stats.rows, 100);
        assert_eq!(stats.chunks, 6);
        assert_eq!(stats.cell_bytes, 100 * 3 * 8);
        // Same rows, same epoch bump, and — because interning order is
        // deterministic per chunk — the same decoded values everywhere.
        assert_eq!(db.epoch(), oracle.epoch());
        assert_eq!(db.epoch_of(RelId(0)), oracle.epoch_of(RelId(0)));
        let a: Vec<_> = db.value_rows(RelId(0)).collect();
        let b: Vec<_> = oracle.value_rows(RelId(0)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn row_major_chunks_match_columnar_chunks() {
        let rows: Vec<Vec<Value>> = (0..60).map(row).collect();
        let mut via_cols = Database::new(catalog());
        {
            let mut b = via_cols.bulk_loader(RelId(0));
            for chunk in rows.chunks(16) {
                let cols: Vec<Vec<Value>> = (0..3)
                    .map(|c| chunk.iter().map(|r| r[c].clone()).collect())
                    .collect();
                b.push_chunk_columns(&cols);
            }
        }
        let mut via_flat = Database::new(catalog());
        {
            let mut b = via_flat.bulk_loader(RelId(0));
            for chunk in rows.chunks(16) {
                let flat: Vec<Value> = chunk.iter().flatten().cloned().collect();
                b.push_rows(&flat);
            }
            assert_eq!(b.len(), 60);
            assert!(!b.is_empty());
        }
        let a: Vec<_> = via_cols.value_rows(RelId(0)).collect();
        let b: Vec<_> = via_flat.value_rows(RelId(0)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn steady_state_chunks_count_as_batch_hits_and_share_the_symbol_table() {
        let rows: Vec<Vec<Value>> = (0..40).map(row).collect();
        let mut db = Database::new(catalog());
        {
            let mut b = db.bulk_loader(RelId(0));
            for chunk in rows.chunks(20) {
                let flat: Vec<Value> = chunk.iter().flatten().cloned().collect();
                b.push_rows(&flat);
            }
        }
        let snap = db.clone();
        {
            // Every value is interned now: the second load over the same
            // rows must be all batch hits and must never clone the symbol
            // table, even with a snapshot outstanding.
            let mut b = db.bulk_loader(RelId(0));
            for chunk in rows.chunks(20) {
                let flat: Vec<Value> = chunk.iter().flatten().cloned().collect();
                b.push_rows(&flat);
            }
            assert_eq!(b.stats().intern_batch_hits, 2);
            assert_eq!(b.stats().chunks, 2);
        }
        assert!(
            std::ptr::eq(snap.symbols(), db.symbols()),
            "steady-state bulk load shares the symbol table"
        );
        assert_eq!(db.table(RelId(0)).len(), 80);
    }

    #[test]
    fn bulk_loader_invalidates_indices_like_the_row_loader() {
        let cat = catalog();
        let mut a = AccessSchema::new(cat.clone());
        a.add("r", &["a"], &["b"], 100).unwrap();
        let mut db = Database::new(cat);
        db.insert("r", &row(1)).unwrap();
        db.build_indexes(&a);
        assert_eq!(db.num_indexes(), 1);
        {
            let mut b = db.bulk_loader(RelId(0));
            b.push_rows(&row(2).into_iter().collect::<Vec<_>>());
        }
        assert_eq!(db.num_indexes(), 0, "bulk load drops the indices");
        db.build_indexes(&a);
        assert_eq!(db.num_indexes(), 1);
    }

    #[test]
    fn pre_encoded_chunks_match_value_chunks_exactly() {
        let rows: Vec<Vec<Value>> = (0..100).map(row).collect();
        let mut oracle = Database::new(catalog());
        {
            let mut b = oracle.bulk_loader(RelId(0));
            for chunk in rows.chunks(17) {
                let cols: Vec<Vec<Value>> = (0..3)
                    .map(|c| chunk.iter().map(|r| r[c].clone()).collect())
                    .collect();
                b.push_chunk_columns(&cols);
            }
        }

        // Warm a second database's symbol table with the same values, then
        // push the same chunks pre-encoded against a shared handle taken
        // *before* the load — the parallel-ingest situation.
        let mut warm = Database::new(catalog());
        {
            let mut b = warm.bulk_loader(RelId(0));
            for chunk in rows.chunks(17) {
                let cols: Vec<Vec<Value>> = (0..3)
                    .map(|c| chunk.iter().map(|r| r[c].clone()).collect())
                    .collect();
                b.push_chunk_columns(&cols);
            }
        }
        // Second pass over `warm`: every value interned, so chunks can be
        // pre-encoded against a snapshot handle and appended cell-level.
        let symbols = warm.shared_symbols();
        let before = warm.value_rows(RelId(0)).collect::<Vec<_>>();
        let stats = {
            let mut b = warm.bulk_loader(RelId(0));
            for chunk in rows.chunks(17) {
                let cols: Vec<Vec<Cell>> = (0..3)
                    .map(|c| {
                        let vals: Vec<Value> = chunk.iter().map(|r| r[c].clone()).collect();
                        let mut out = Vec::new();
                        assert_eq!(symbols.try_encode_into(&vals, &mut out), vals.len());
                        out
                    })
                    .collect();
                b.push_encoded_columns(&cols);
            }
            b.stats()
        };
        assert_eq!(stats.rows, 100);
        assert_eq!(stats.chunks, 6);
        assert_eq!(
            stats.intern_batch_hits, 6,
            "pre-encoded chunks are batch hits"
        );
        let after = warm.value_rows(RelId(0)).collect::<Vec<_>>();
        assert_eq!(after.len(), 200);
        assert_eq!(&after[100..], &before[..]);
        let o: Vec<_> = oracle.value_rows(RelId(0)).collect();
        assert_eq!(&after[100..], &o[..]);
    }

    #[test]
    #[should_panic(expected = "ragged chunk columns")]
    fn ragged_chunk_panics() {
        let mut db = Database::new(catalog());
        let mut b = db.bulk_loader(RelId(0));
        b.push_chunk_columns(&[
            vec![Value::int(1)],
            vec![Value::int(2), Value::int(3)],
            vec![Value::int(4)],
        ]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn flat_arity_mismatch_panics() {
        let mut db = Database::new(catalog());
        let mut b = db.bulk_loader(RelId(0));
        b.push_rows(&[Value::int(1), Value::int(2)]);
    }
}
