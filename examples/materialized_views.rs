//! Views and incremental maintenance: the conclusion's "effectively
//! bounded incrementally or using views", end to end.
//!
//! 1. Define a view joining accidents to their nearest public-transport
//!    stops, materialize it, and *derive* sound access constraints for it
//!    from the base schema.
//! 2. A query over the view plans with a tighter bound than over the base
//!    tables.
//! 3. Maintain a dashboard query incrementally: each new accident report
//!    updates the answer with a handful of index probes instead of a
//!    re-evaluation.
//!
//! Run with: `cargo run --release --example materialized_views`

use bounded_cq::core::views::{expand_with_views, ViewDef};
use bounded_cq::exec::{materialize_views, IncrementalAnswer};
use bounded_cq::prelude::*;
use bounded_cq::workload::tfacc;

fn main() -> Result<()> {
    // --- 1. a view over the TFACC base schema -------------------------
    let base = tfacc::catalog();
    let base_access = tfacc::access_schema();

    let view = ViewDef {
        name: "v_accident_stops".into(),
        query: SpcQuery::builder(base.clone(), "v_def")
            .atom("accident", "ac")
            .atom("accident_stop", "ast")
            .eq_const(("ac", "date"), 5)
            .eq(("ast", "aid"), ("ac", "aid"))
            .project(("ac", "aid"))
            .project(("ac", "district_id"))
            .project(("ast", "stop_id"))
            .build()
            .unwrap(),
    };
    let exp = expand_with_views(base.clone(), vec![view])?;
    let derived = exp.derive_view_constraints(&base_access)?;
    println!(
        "derived {} access constraints for the view (base had {})",
        derived.len() - base_access.len(),
        base_access.len()
    );
    for &cid in derived.for_relation(exp.view_rel(0)).iter().take(4) {
        println!("  {}", derived.constraint(cid).display(derived.catalog()));
    }

    // Copy a generated base instance into the expanded catalog and
    // materialize.
    let src = tfacc::generate(0.125, 7);
    let mut db = Database::new(exp.catalog().clone());
    for i in 0..base.len() {
        let rel = RelId(i);
        let rows: Vec<Vec<Value>> = src.value_rows(rel).collect();
        let mut t = db.loader(rel);
        for r in &rows {
            t.push(r);
        }
    }
    let sizes = materialize_views(&mut db, &exp)?;
    println!("\nmaterialized v_accident_stops: {} rows", sizes[0]);
    db.build_indexes(&derived);

    // --- 2. query the view, boundedly ---------------------------------
    let q = SpcQuery::builder(exp.catalog().clone(), "stops_of_day5_accidents")
        .atom("v_accident_stops", "v")
        .eq_const(("v", "ac_aid"), 5 * 31) // some accident of date 5
        .project(("v", "ast_stop_id"))
        .build()
        .unwrap();
    match qplan(&q, &derived) {
        Ok(plan) => {
            let out = eval_dq(&db, &plan, &derived)?;
            println!(
                "view query: Σ M_i = {}, |DQ| = {}, {} row(s)",
                plan.cost_bound(),
                out.dq_tuples(),
                out.result.len()
            );
        }
        Err(e) => println!("view query not bounded: {e}"),
    }

    // --- 3. incremental maintenance on the base dashboard query -------
    let dashboard = SpcQuery::builder(base.clone(), "day5_vehicles")
        .atom("accident", "ac")
        .atom("vehicle", "ve")
        .eq_const(("ac", "date"), 5)
        .eq_const(("ac", "district_id"), 7)
        .eq(("ve", "aid"), ("ac", "aid"))
        .eq_const(("ve", "vtype"), 3)
        .project(("ve", "vid"))
        .build()
        .unwrap();
    let mut base_db = src;
    base_db.build_indexes(&base_access);
    let mut inc = IncrementalAnswer::initialize(&base_db, &dashboard, &base_access)?;
    println!("\ndashboard initialized: {} vehicle(s)", inc.result().len());

    // A new accident report arrives (date 5, district 7) with one vehicle.
    let aid = 10_000_000i64;
    let accident_row: Vec<Value> = vec![
        Value::int(aid),
        Value::int(5),  // date
        Value::int(12), // time slot
        Value::int(7),  // district
        Value::int(2),
        Value::int(1),
        Value::int(0),
        Value::int(0),
        Value::int(0),
        Value::int(30),
        Value::int(0),
        Value::int(1),
        Value::int(1),
        Value::int(7), // police_force = district % 52
        Value::int(0),
        Value::int(0),
    ];
    let vehicle_row: Vec<Value> = vec![
        Value::int(20_000_000),
        Value::int(aid),
        Value::int(3), // vtype
        Value::int(5),
        Value::int(55),
        Value::int(2),
        Value::int(1600),
        Value::int(4),
        Value::int(0),
        Value::int(0),
        Value::int(0),
        Value::int(1),
        Value::int(4),
        Value::int(1),
    ];
    // One call each: the row is appended, every index is maintained in
    // place, and the bounded delta updates the answer.
    let s1 = inc.insert_and_apply(&mut base_db, "accident", &accident_row)?;
    let s2 = inc.insert_and_apply(&mut base_db, "vehicle", &vehicle_row)?;
    println!(
        "applied 2 insertions: +{} answer(s), {} tuples fetched total \
         (vs full re-evaluation of the whole query)",
        s1.added_rows + s2.added_rows,
        s1.tuples_fetched + s2.tuples_fetched
    );
    assert!(inc.result().contains(&[Value::int(20_000_000)]));
    println!("dashboard now: {} vehicle(s)", inc.result().len());
    Ok(())
}
