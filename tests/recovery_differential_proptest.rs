//! Crash-point differential proof of the durability layer: random
//! interleavings of maintained inserts/deletes, out-of-band writes and
//! bulk loads — row-at-a-time and chunked columnar, so cuts land inside
//! encoded `BulkChunk` records too — are applied to a WAL-attached
//! database, the log is cut at a
//! **random byte offset** — including mid-record and mid-bulk — and
//! recovery must land on exactly the state the never-crashed oracle had at
//! some commit boundary at or before the cut: same rows, same epoch
//! vector, same index postings (down to rids and witness lists, since
//! replay reproduces every operation in identical order through the
//! public `Database` API). Recovering twice must equal recovering once.
//!
//! A second layer drives the same interleavings end to end through the
//! serving tier ([`Server::open`] with a registered incremental view):
//! after the crash, the reopened view must equal a fresh recompute over
//! the recovered snapshot — whether it rode replay through its delta path
//! or was forced to recompute by a bulk load in the surviving prefix.
//!
//! Runs 256 interleavings per schema by default (the shim's deterministic
//! per-test seeding keeps the normal CI job reproducible);
//! `PROPTEST_CASES=512` is CI's scheduled deep-fuzz gate.

use bounded_cq::durability::{recover, LogStorage, MemLog, SyncPolicy, WalWriter};
use bounded_cq::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

// --- comparable state dumps ----------------------------------------------

/// One relation's full recovered-comparable state. Index postings are
/// compared exactly (sorted by key): replay re-runs every mutation in the
/// original order through the same code paths, so rids, posting order and
/// witness promotion must all reproduce bit-for-bit.
#[derive(Debug, PartialEq)]
struct RelDump {
    epoch: u64,
    rows: Vec<Vec<Value>>,
    #[allow(clippy::type_complexity)]
    indexes: Vec<(Vec<usize>, Vec<usize>, Vec<(Vec<u64>, Vec<u32>, Vec<u32>)>)>,
}

fn dump(db: &Database) -> (u64, Vec<RelDump>) {
    let rels = (0..db.num_relations())
        .map(|i| {
            let rel = RelId(i);
            let shard = db.shard(rel);
            let indexes = shard
                .index_specs()
                .map(|(x, y)| {
                    let idx = shard.index(x, y).expect("spec lists a built index");
                    let mut entries: Vec<(Vec<u64>, Vec<u32>, Vec<u32>)> = idx
                        .entries()
                        .map(|(k, p)| {
                            (
                                k.iter().map(|c| c.raw()).collect(),
                                p.all.clone(),
                                p.witnesses.clone(),
                            )
                        })
                        .collect();
                    entries.sort();
                    (x.to_vec(), y.to_vec(), entries)
                })
                .collect();
            RelDump {
                epoch: db.epoch_of(rel),
                rows: db.value_rows(rel).collect(),
                indexes,
            }
        })
        .collect();
    (db.epoch(), rels)
}

// --- schemas (TFACC-shaped join, MOT-shaped wide relation) ---------------

fn tfacc_catalog() -> Arc<Catalog> {
    Catalog::from_names(&[
        ("accident", &["aid", "district_id", "severity"]),
        ("vehicle", &["aid", "vtype"]),
    ])
    .unwrap()
}

fn tfacc_access() -> AccessSchema {
    let mut a = AccessSchema::new(tfacc_catalog());
    a.add("accident", &["district_id"], &["aid", "severity"], 16)
        .unwrap();
    a.add("accident", &["aid"], &["district_id", "severity"], 4)
        .unwrap();
    a.add("vehicle", &["aid"], &["vtype"], 8).unwrap();
    a
}

fn tfacc_query() -> SpcQuery {
    SpcQuery::builder(tfacc_catalog(), "district_vehicles")
        .atom("accident", "ac")
        .atom("vehicle", "v")
        .eq_const(("ac", "district_id"), 1)
        .eq(("ac", "aid"), ("v", "aid"))
        .project(("ac", "aid"))
        .project(("v", "vtype"))
        .build()
        .unwrap()
}

fn mot_catalog() -> Arc<Catalog> {
    Catalog::from_names(&[("mot_test", &["test_id", "vehicle_id", "year", "result"])]).unwrap()
}

fn mot_access() -> AccessSchema {
    let mut a = AccessSchema::new(mot_catalog());
    a.add(
        "mot_test",
        &["vehicle_id"],
        &["test_id", "year", "result"],
        16,
    )
    .unwrap();
    a.add("mot_test", &[], &["vehicle_id"], 8).unwrap();
    a
}

// --- the storage-level crash harness -------------------------------------

/// One generated mutation. `vals` is reinterpreted per schema; strings are
/// mixed in so symbol-interning replay is exercised alongside small ints.
type Op = (i64, bool, [i64; 3]);

fn tfacc_row(into_accident: bool, vals: &[i64; 3]) -> (&'static str, Vec<Value>) {
    if into_accident {
        (
            "accident",
            vec![
                Value::int(vals[0]),
                Value::int(vals[1]),
                Value::str(["low", "high", "fatal"][(vals[2].rem_euclid(3)) as usize]),
            ],
        )
    } else {
        ("vehicle", vec![Value::int(vals[0]), Value::int(vals[1])])
    }
}

fn mot_row(_into: bool, vals: &[i64; 3]) -> (&'static str, Vec<Value>) {
    (
        "mot_test",
        vec![
            Value::int(vals[0]),
            Value::int(vals[1]),
            Value::int(vals[2].rem_euclid(3)),
            Value::str(["pass", "fail"][(vals[0].rem_euclid(2)) as usize]),
        ],
    )
}

/// Runs `ops` against a WAL-attached database (recording the oracle state
/// at every commit boundary), cuts the log at `cut_seed % (bytes + 1)`,
/// recovers, and asserts the recovered state equals the oracle boundary
/// recovery reports — then recovers again and asserts idempotence.
fn crash_and_check(
    catalog: Arc<Catalog>,
    access: &AccessSchema,
    ops: &[Op],
    row_of: fn(bool, &[i64; 3]) -> (&'static str, Vec<Value>),
    cut_seed: u32,
) {
    let log = Arc::new(MemLog::new());
    let writer = Arc::new(WalWriter::new(
        Arc::clone(&log) as Arc<dyn LogStorage>,
        SyncPolicy::Manual,
        1,
    ));
    let mut db = Database::new(Arc::clone(&catalog));
    db.set_wal(Some(writer.clone()));

    // Every commit boundary the oracle passes through: (last_seq, state).
    // Index builds are logged one record each, so each gets a boundary.
    let mut boundaries = vec![(0u64, dump(&db))];
    for c in access.constraints() {
        db.ensure_index(c);
        boundaries.push((writer.last_seq(), dump(&db)));
    }
    for (kind, flip, vals) in ops {
        let (rel_name, row) = row_of(*flip, vals);
        match kind.rem_euclid(6) {
            0 | 1 => {
                db.insert_maintained(rel_name, &row).unwrap();
            }
            2 => {
                // Out-of-band insert: drops the relation's indices.
                db.insert(rel_name, &row).unwrap();
            }
            3 => {
                db.delete_maintained(rel_name, &row).unwrap();
            }
            4 => {
                db.delete(rel_name, &row).unwrap();
            }
            5 => {
                // Bulk load of two rows (BulkBegin..rows..BulkEnd bracket).
                let rel = db.catalog().require_rel(rel_name).unwrap();
                let (_, row2) = row_of(!*flip, vals);
                let mut l = db.loader(rel);
                l.push(&row);
                if row2.len() == row.len() {
                    l.push(&row2);
                }
            }
            _ => {
                // Chunked columnar bulk load: three rows land in a single
                // WAL BulkChunk record, so the cut can fall inside the
                // encoded chunk and replay must still intern/append
                // exactly as the live loader did.
                let rel = db.catalog().require_rel(rel_name).unwrap();
                let mut cols: Vec<Vec<Value>> = vec![Vec::new(); row.len()];
                for delta in 0..3 {
                    let mut v = *vals;
                    v[0] += delta;
                    let (_, r) = row_of(*flip, &v);
                    for (col, val) in cols.iter_mut().zip(r) {
                        col.push(val);
                    }
                }
                let mut l = db.bulk_loader(rel);
                l.push_chunk_columns(&cols);
            }
        }
        boundaries.push((writer.last_seq(), dump(&db)));
    }

    // Crash at a random byte offset — nothing was ever synced, so the cut
    // can land anywhere: mid-record, mid-bulk, between streams' records.
    let total = log.unsynced_bytes();
    log.crash(cut_seed as usize % (total + 1));

    let (recovered, report) = recover(&*log, Arc::clone(&catalog)).unwrap();
    // The recovered state must be the oracle's state at the last commit
    // boundary the report says was applied. (Recovery may stop mid-op on a
    // non-commit record — a symbol intern, a bulk row — but the *state* is
    // then exactly the previous boundary's.)
    let (boundary_seq, oracle) = boundaries
        .iter()
        .rev()
        .find(|(seq, _)| *seq <= report.last_seq)
        .expect("boundary 0 always qualifies");
    assert_eq!(
        &dump(&recovered),
        oracle,
        "cut at {} of {} bytes, recovered to seq {} (boundary {})",
        cut_seed as usize % (total + 1),
        total,
        report.last_seq,
        boundary_seq
    );

    // Idempotence: recovery truncated the junk away; a second recovery
    // sees a clean log and reproduces the same state.
    let (again, report2) = recover(&*log, catalog).unwrap();
    assert_eq!(dump(&again), dump(&recovered));
    assert_eq!(report2.last_seq, report.last_seq);
    assert_eq!(report2.torn_bytes, 0);
    assert_eq!(report2.discarded, 0);
}

proptest! {
    // 256 crash points per schema by default; PROPTEST_CASES overrides.
    #![proptest_config(ProptestConfig::default())]

    #[test]
    fn tfacc_shaped_crash_points_recover_to_an_oracle_boundary(
        ops in prop::collection::vec((0..7i64, any::<bool>(), [0..4i64, 0..3i64, 0..3i64]), 1..12),
        cut_seed in any::<u32>(),
    ) {
        crash_and_check(tfacc_catalog(), &tfacc_access(), &ops, tfacc_row, cut_seed);
    }

    #[test]
    fn mot_shaped_crash_points_recover_to_an_oracle_boundary(
        ops in prop::collection::vec((0..7i64, any::<bool>(), [0..6i64, 0..4i64, 0..3i64]), 1..12),
        cut_seed in any::<u32>(),
    ) {
        crash_and_check(mot_catalog(), &mot_access(), &ops, mot_row, cut_seed);
    }
}

// --- the serving-level crash harness -------------------------------------

fn reevaluate(db: &Database, q: &SpcQuery, a: &AccessSchema) -> ResultSet {
    let plan = qplan(q, a).unwrap();
    eval_dq(db, &plan, a).unwrap().result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same interleavings end to end through [`Server::open`]: writes
    /// go through the maintained serving paths (plus occasional bulk
    /// loads), the log is cut at a random offset past the setup prefix,
    /// and the reopened server's registered view must equal a fresh
    /// recompute over whatever prefix survived. When the cut lands exactly
    /// on a served commit boundary, the full state must match the oracle's.
    #[test]
    fn served_crash_points_keep_views_consistent_with_recompute(
        ops in prop::collection::vec((0..9i64, any::<bool>(), [0..4i64, 0..3i64, 0..3i64]), 1..8),
        cut_seed in any::<u32>(),
    ) {
        let a = tfacc_access();
        let q = tfacc_query();
        let open = |log: &Arc<MemLog>| {
            Server::open(
                Arc::clone(log) as Arc<dyn LogStorage>,
                a.clone(),
                ServerConfig::default(),
                DurabilityConfig { policy: SyncPolicy::Manual, keep_snapshots: 2 },
                std::slice::from_ref(&q),
            )
            .unwrap()
        };
        let log = Arc::new(MemLog::new());
        let (server, _, ids) = open(&log);
        let server = Arc::new(server);
        let view = ids[0];
        // The setup prefix (index builds) is multi-record; cuts inside it
        // are covered by the storage-level harness above. Here the cut
        // lands in the served-write suffix.
        let setup_bytes = log.unsynced_bytes();

        // Oracle states keyed by WAL position after each serving-path op.
        let mut boundaries: Vec<(u64, (u64, Vec<RelDump>))> = Vec::new();
        let mut record = |server: &Server| {
            let m = server.metrics_snapshot();
            boundaries.push((m.wal.last_seq, dump(&server.snapshot())));
        };
        record(&server);
        for (kind, into_accident, vals) in &ops {
            let (rel_name, row) = tfacc_row(*into_accident, vals);
            match kind.rem_euclid(9) {
                0..=3 => {
                    server.insert(rel_name, &row).unwrap();
                }
                4 | 5 => {
                    server.delete(rel_name, &row).unwrap();
                }
                6 | 7 => {
                    server.bulk_update(|db| {
                        let rel = db.catalog().require_rel(rel_name).unwrap();
                        let mut l = db.loader(rel);
                        l.push(&row);
                    });
                }
                _ => {
                    // The serving-tier chunked fast path: a two-row
                    // columnar chunk (one WAL BulkChunk record).
                    let mut v = *vals;
                    v[0] += 1;
                    let (_, row2) = tfacc_row(*into_accident, &v);
                    let cols: Vec<Vec<Value>> = row
                        .iter()
                        .zip(&row2)
                        .map(|(a, b)| vec![a.clone(), b.clone()])
                        .collect();
                    server
                        .bulk_load(rel_name, |l| l.push_chunk_columns(&cols))
                        .unwrap();
                }
            }
            record(&server);
        }
        prop_assert_eq!(
            &server.view_result(view).unwrap(),
            &reevaluate(&server.snapshot(), &q, &a),
            "live view diverged before any crash"
        );
        drop(server);

        let total = log.unsynced_bytes();
        let cut = setup_bytes + cut_seed as usize % (total - setup_bytes + 1);
        log.crash(cut);

        let (server2, report, ids2) = open(&log);
        let server2 = Arc::new(server2);
        let snap = server2.snapshot();
        // The reopened view equals a fresh recompute over the recovered
        // prefix, no matter where the cut fell.
        prop_assert_eq!(
            &server2.view_result(ids2[0]).unwrap(),
            &reevaluate(&snap, &q, &a),
            "recovered view != recompute (cut at {} of {} bytes)", cut, total
        );
        // On an exact boundary landing, the whole state must match.
        if let Some((_, oracle)) = boundaries.iter().rev().find(|(s, _)| *s == report.last_seq) {
            prop_assert_eq!(&dump(&snap), oracle);
        }
        // And the recovered server keeps serving writes + view deltas.
        server2.insert("vehicle", &[Value::int(0), Value::int(1)]).unwrap();
        prop_assert_eq!(
            &server2.view_result(ids2[0]).unwrap(),
            &reevaluate(&server2.snapshot(), &q, &a)
        );
    }
}

// --- concurrent writers under group commit --------------------------------

/// Opens a served TFACC store on `log` with the given fsync policy.
fn open_served(log: &Arc<MemLog>, policy: SyncPolicy) -> Arc<Server> {
    let (server, _, _) = Server::open(
        Arc::clone(log) as Arc<dyn LogStorage>,
        tfacc_access(),
        ServerConfig::default(),
        DurabilityConfig {
            policy,
            keep_snapshots: 2,
        },
        &[],
    )
    .unwrap();
    Arc::new(server)
}

/// Writer `w`'s deterministic insert sequence (writer 0 owns `accident`,
/// writer 1 owns `vehicle` — disjoint relations, so the threaded run's
/// per-relation row order is each writer's program order).
fn writer_rows(w: usize, n: usize) -> (&'static str, Vec<Vec<Value>>) {
    let rel = ["accident", "vehicle"][w];
    let rows = (0..n)
        .map(|i| tfacc_row(w == 0, &[i as i64, (i % 3) as i64, (i % 3) as i64]).1)
        .collect();
    (rel, rows)
}

fn run_concurrent_writers(server: &Arc<Server>, counts: &[usize]) {
    std::thread::scope(|scope| {
        for (w, &n) in counts.iter().enumerate() {
            let server = Arc::clone(server);
            scope.spawn(move || {
                let (rel, rows) = writer_rows(w, n);
                for row in &rows {
                    server.insert(rel, row).unwrap();
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Group commit, fsync-before-ack: with [`SyncPolicy::Always`] a
    /// writer only unblocks once a (possibly shared) fsync covers its
    /// record, so after concurrent writers all return, **nothing** sits
    /// unsynced — and a crash that discards the entire unsynced tail
    /// loses not a single acknowledged write.
    #[test]
    fn concurrent_acked_writes_survive_a_crash(
        counts in prop::collection::vec(1usize..12, 2..=2),
    ) {
        let log = Arc::new(MemLog::new());
        let server = open_served(&log, SyncPolicy::Always);
        run_concurrent_writers(&server, &counts);

        let expect = dump(&server.snapshot());
        let stats = server.wal_stats().unwrap();
        let total = (counts[0] + counts[1]) as u64;
        prop_assert_eq!(
            stats.group_records, total,
            "every acknowledged write was covered by a group flush"
        );
        prop_assert!(stats.group_batches <= stats.group_records);
        prop_assert_eq!(
            log.unsynced_bytes(), 0,
            "an acknowledged write was left unsynced (ack before fsync)"
        );
        drop(server);

        log.crash(0); // discard the (empty) unsynced tail
        let server2 = open_served(&log, SyncPolicy::Always);
        prop_assert_eq!(dump(&server2.snapshot()), expect);
    }

    /// Group commit, torn-tail discard: with a lazy fsync policy the
    /// whole write suffix sits unsynced; a crash cutting it at an
    /// arbitrary byte — mid-record, mid-batch — must recover each
    /// relation to a **prefix** of its writer's program order (never a
    /// torn or reordered row), and a second recovery must be clean.
    #[test]
    fn concurrent_unsynced_tail_recovers_to_a_consistent_prefix(
        counts in prop::collection::vec(1usize..10, 2..=2),
        keep in any::<u32>(),
    ) {
        let log = Arc::new(MemLog::new());
        // Effectively "never fsync": the entire served suffix is one
        // unacknowledged torn batch. (`Server::open` itself ends with a
        // durable barrier, so the setup prefix is already synced and the
        // cut below always lands in the write suffix.)
        let server = open_served(&log, SyncPolicy::EveryOps(100_000));
        run_concurrent_writers(&server, &counts);
        drop(server);

        let tail = log.unsynced_bytes();
        prop_assert!(tail > 0, "writes must have produced an unsynced tail");
        log.crash(keep as usize % tail); // strictly torn: ≥ 1 byte lost

        let server2 = open_served(&log, SyncPolicy::EveryOps(100_000));
        let snap = server2.snapshot();
        for (w, &n) in counts.iter().enumerate() {
            let (rel_name, rows) = writer_rows(w, n);
            let rel = snap.catalog().require_rel(rel_name).unwrap();
            let got: Vec<Vec<Value>> = snap.value_rows(rel).collect();
            prop_assert!(
                got.len() <= rows.len(),
                "recovery invented rows for {}", rel_name
            );
            prop_assert_eq!(
                &got[..], &rows[..got.len()],
                "recovered {} is not a program-order prefix", rel_name
            );
        }
        let expect = dump(&snap);
        drop(snap);
        drop(server2);

        // Idempotence: recovery truncated the torn tail; reopening sees a
        // clean log and reproduces the same state.
        let server3 = open_served(&log, SyncPolicy::EveryOps(100_000));
        prop_assert_eq!(dump(&server3.snapshot()), expect);
    }
}
