//! Compact interned rows: the data-plane representation.
//!
//! Every stored tuple, index key, and join row in the system is a sequence
//! of [`Cell`]s — single `u64` words encoding a [`crate::value::Value`]
//! losslessly against a [`crate::symbols::SymbolTable`]:
//!
//! * small integers (|i| < 2⁶⁰) are stored inline;
//! * strings are interned to `u32` symbol ids;
//! * the rare out-of-range integer is interned like a string;
//! * `Null` is a distinguished word.
//!
//! Hashing and comparing cells is fixed-width `u64` work — no pointer
//! chasing, no byte-wise string hashing — which is what makes index probes
//! and hash joins cheap enough to match the paper's "cost independent of
//! `|D|`" story with good constants. [`RowBuf`] is the owning row type:
//! rows of up to four cells (the common case for projected join rows and
//! index keys) live inline without a heap allocation.

use crate::symbols::Sym;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::num::NonZeroU64;

/// Discriminant bits in a [`Cell`]'s low three bits. All tags are non-zero
/// so `Cell` can wrap [`NonZeroU64`] (making `Option<Cell>` word-sized).
const TAG_MASK: u64 = 0b111;
const TAG_INT: u64 = 0b001;
const TAG_SYM: u64 = 0b010;
const TAG_NULL: u64 = 0b011;
const TAG_WIDE: u64 = 0b100;

/// Inclusive magnitude bound for inline integers: 61 payload bits.
const SMALL_MIN: i64 = -(1 << 60);
const SMALL_MAX: i64 = (1 << 60) - 1;

/// One interned value: a `u64`-encoded [`crate::value::Value`].
///
/// Cells are meaningful only relative to the [`crate::symbols::SymbolTable`]
/// that produced them; two cells from the same table are equal iff their
/// decoded values are equal. `Ord` is **representation order** (useful for
/// canonical sorting/deduplication), not the semantic order of `Value`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell(NonZeroU64);

/// The decoded shape of a [`Cell`], for callers that need to branch without
/// a symbol table at hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// The padding value.
    Null,
    /// An inline small integer.
    SmallInt(i64),
    /// An interned string.
    Sym(Sym),
    /// An interned out-of-range integer (index into the wide-int pool).
    WideInt(u32),
}

impl Cell {
    /// The `Null` cell.
    pub const NULL: Cell = match NonZeroU64::new(TAG_NULL) {
        Some(bits) => Cell(bits),
        None => unreachable!(),
    };

    /// Encodes a small integer inline; `None` if `i` needs the wide-int
    /// pool (see [`crate::symbols::SymbolTable::encode`]).
    #[inline]
    pub fn from_small_int(i: i64) -> Option<Cell> {
        if (SMALL_MIN..=SMALL_MAX).contains(&i) {
            // Low three bits are the non-zero tag, so the word is non-zero.
            let bits = ((i as u64) << 3) | TAG_INT;
            Some(Cell(NonZeroU64::new(bits).expect("tag bits are non-zero")))
        } else {
            None
        }
    }

    /// Encodes an interned string symbol.
    #[inline]
    pub fn from_sym(sym: Sym) -> Cell {
        let bits = (u64::from(sym.0) << 3) | TAG_SYM;
        Cell(NonZeroU64::new(bits).expect("tag bits are non-zero"))
    }

    /// Encodes a wide-int pool index (crate-internal: produced by the
    /// symbol table).
    #[inline]
    pub(crate) fn from_wide(ix: u32) -> Cell {
        let bits = (u64::from(ix) << 3) | TAG_WIDE;
        Cell(NonZeroU64::new(bits).expect("tag bits are non-zero"))
    }

    /// The decoded shape.
    #[inline]
    pub fn kind(self) -> CellKind {
        let bits = self.0.get();
        let payload = bits >> 3;
        match bits & TAG_MASK {
            TAG_INT => CellKind::SmallInt((bits as i64) >> 3),
            TAG_SYM => CellKind::Sym(Sym(payload as u32)),
            TAG_NULL => CellKind::Null,
            TAG_WIDE => CellKind::WideInt(payload as u32),
            _ => unreachable!("invalid cell tag"),
        }
    }

    /// `true` if this is the `Null` cell.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0.get() == TAG_NULL
    }

    /// The inline integer payload, if this is a small-int cell. (Wide
    /// integers need the symbol table to decode; see
    /// [`crate::symbols::SymbolTable::decode`].)
    #[inline]
    pub fn as_small_int(self) -> Option<i64> {
        match self.kind() {
            CellKind::SmallInt(i) => Some(i),
            _ => None,
        }
    }

    /// The symbol payload, if this is an interned-string cell.
    #[inline]
    pub fn as_sym(self) -> Option<Sym> {
        match self.kind() {
            CellKind::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The raw word (diagnostics / hashing experiments).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0.get()
    }

    /// Reconstructs a cell from a raw word previously obtained via
    /// [`Cell::raw`] — the durability layer's deserialization path. Returns
    /// `None` for words that are not a valid cell encoding (zero, or an
    /// unknown tag), so corrupted log bytes surface as decode failures
    /// instead of undefined cells.
    #[inline]
    pub fn from_raw(bits: u64) -> Option<Cell> {
        match bits & TAG_MASK {
            TAG_INT | TAG_SYM | TAG_NULL | TAG_WIDE => NonZeroU64::new(bits).map(Cell),
            _ => None,
        }
    }
}

impl fmt::Debug for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            CellKind::Null => write!(f, "Cell(NULL)"),
            CellKind::SmallInt(i) => write!(f, "Cell({i})"),
            CellKind::Sym(s) => write!(f, "Cell(sym#{})", s.0),
            CellKind::WideInt(ix) => write!(f, "Cell(wide#{ix})"),
        }
    }
}

/// A borrowed row of cells.
pub type Row = [Cell];

/// How many cells fit inline before [`RowBuf`] spills to the heap. Sized
/// for the common data-plane rows: projected join rows and index keys are
/// almost always ≤ 4 columns.
const INLINE_CELLS: usize = 4;

/// An owning row of [`Cell`]s with inline storage for up to
/// `INLINE_CELLS` (4) cells — no heap allocation on the hot path.
#[derive(Clone)]
pub struct RowBuf(Repr);

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        cells: [Cell; INLINE_CELLS],
    },
    Heap(Vec<Cell>),
}

impl RowBuf {
    /// The empty row (also the Boolean-query witness tuple).
    #[inline]
    pub fn new() -> Self {
        RowBuf(Repr::Inline {
            len: 0,
            cells: [Cell::NULL; INLINE_CELLS],
        })
    }

    /// An empty row that can hold `n` cells without reallocation.
    pub fn with_capacity(n: usize) -> Self {
        if n <= INLINE_CELLS {
            Self::new()
        } else {
            RowBuf(Repr::Heap(Vec::with_capacity(n)))
        }
    }

    /// Appends one cell.
    #[inline]
    pub fn push(&mut self, cell: Cell) {
        match &mut self.0 {
            Repr::Inline { len, cells } => {
                if usize::from(*len) < INLINE_CELLS {
                    cells[usize::from(*len)] = cell;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_CELLS * 2);
                    v.extend_from_slice(&cells[..]);
                    v.push(cell);
                    self.0 = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(cell),
        }
    }

    /// The cells as a slice.
    #[inline]
    pub fn as_slice(&self) -> &Row {
        match &self.0 {
            Repr::Inline { len, cells } => &cells[..usize::from(*len)],
            Repr::Heap(v) => v,
        }
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Heap(v) => v.len(),
        }
    }

    /// `true` if the row has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for RowBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for RowBuf {
    type Target = Row;
    #[inline]
    fn deref(&self) -> &Row {
        self.as_slice()
    }
}

impl std::borrow::Borrow<Row> for RowBuf {
    #[inline]
    fn borrow(&self) -> &Row {
        self.as_slice()
    }
}

impl PartialEq for RowBuf {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for RowBuf {}

/// Hash matches `<[Cell] as Hash>` so `RowBuf` keys can be probed with
/// borrowed `&[Cell]` slices (the `Borrow` contract).
impl Hash for RowBuf {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialOrd for RowBuf {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RowBuf {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for RowBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl FromIterator<Cell> for RowBuf {
    fn from_iter<I: IntoIterator<Item = Cell>>(iter: I) -> Self {
        let mut row = RowBuf::new();
        for cell in iter {
            row.push(cell);
        }
        row
    }
}

impl From<&Row> for RowBuf {
    fn from(cells: &Row) -> Self {
        cells.iter().copied().collect()
    }
}

impl<'a> IntoIterator for &'a RowBuf {
    type Item = &'a Cell;
    type IntoIter = std::slice::Iter<'a, Cell>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fx::FxHashMap;

    #[test]
    fn small_int_roundtrip_and_bounds() {
        for i in [0i64, 1, -1, 42, SMALL_MIN, SMALL_MAX] {
            let c = Cell::from_small_int(i).unwrap();
            assert_eq!(c.kind(), CellKind::SmallInt(i), "{i}");
        }
        assert!(Cell::from_small_int(SMALL_MIN - 1).is_none());
        assert!(Cell::from_small_int(SMALL_MAX + 1).is_none());
        assert!(Cell::from_small_int(i64::MAX).is_none());
        assert!(Cell::from_small_int(i64::MIN).is_none());
    }

    #[test]
    fn tags_are_disjoint() {
        let int0 = Cell::from_small_int(0).unwrap();
        let sym0 = Cell::from_sym(Sym(0));
        let wide0 = Cell::from_wide(0);
        let cells = [int0, sym0, wide0, Cell::NULL];
        for (i, a) in cells.iter().enumerate() {
            for (j, b) in cells.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
        assert!(Cell::NULL.is_null());
        assert!(!int0.is_null());
    }

    #[test]
    fn from_raw_roundtrips_valid_words_and_rejects_garbage() {
        let cells = [
            Cell::from_small_int(42).unwrap(),
            Cell::from_small_int(-42).unwrap(),
            Cell::from_sym(Sym(7)),
            Cell::from_wide(3),
            Cell::NULL,
        ];
        for c in cells {
            assert_eq!(Cell::from_raw(c.raw()), Some(c));
        }
        assert_eq!(Cell::from_raw(0), None, "zero word is never a cell");
        for bad_tag in [0b000u64, 0b101, 0b110, 0b111] {
            assert_eq!(Cell::from_raw((99 << 3) | bad_tag), None, "tag {bad_tag:b}");
        }
    }

    #[test]
    fn option_cell_is_word_sized() {
        assert_eq!(std::mem::size_of::<Option<Cell>>(), 8);
        assert_eq!(std::mem::size_of::<Cell>(), 8);
    }

    #[test]
    fn rowbuf_inline_then_heap() {
        let mut r = RowBuf::new();
        assert!(r.is_empty());
        for i in 0..10 {
            r.push(Cell::from_small_int(i).unwrap());
            assert_eq!(r.len(), (i + 1) as usize);
        }
        let decoded: Vec<i64> = r
            .iter()
            .map(|c| match c.kind() {
                CellKind::SmallInt(i) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(decoded, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rowbuf_eq_hash_agree_across_reprs() {
        // Same cells, one inline (len 4) and one spilled via with_capacity.
        let cells: Vec<Cell> = (0..4).map(|i| Cell::from_small_int(i).unwrap()).collect();
        let inline: RowBuf = cells.iter().copied().collect();
        let mut heap = RowBuf::with_capacity(16);
        for &c in &cells {
            heap.push(c);
        }
        assert_eq!(inline, heap);
        let mut m: FxHashMap<RowBuf, u32> = FxHashMap::default();
        m.insert(inline, 7);
        assert_eq!(m.get(heap.as_slice()), Some(&7));
    }

    #[test]
    fn rowbuf_borrow_lookup() {
        let mut m: FxHashMap<RowBuf, &'static str> = FxHashMap::default();
        let key: RowBuf = [Cell::from_sym(Sym(3)), Cell::NULL].into_iter().collect();
        m.insert(key, "hit");
        let probe = [Cell::from_sym(Sym(3)), Cell::NULL];
        assert_eq!(m.get(&probe[..]), Some(&"hit"));
        let miss = [Cell::from_sym(Sym(4)), Cell::NULL];
        assert_eq!(m.get(&miss[..]), None);
    }
}
