//! The SQL-style surface syntax round-trips every workload query, and
//! parsed queries analyze identically to built ones.

use bounded_cq::core::parser::{parse_spc, render_sql};
use bounded_cq::prelude::*;

#[test]
fn all_45_workload_queries_roundtrip() {
    for ds in all_datasets() {
        for wq in &ds.queries {
            let sql = render_sql(&wq.query)
                .unwrap_or_else(|e| panic!("{}: render failed: {e}", wq.query.name()));
            let back = parse_spc(ds.catalog.clone(), wq.query.name(), &sql)
                .unwrap_or_else(|e| panic!("{}: parse failed: {e}\n{sql}", wq.query.name()));
            assert_eq!(back, wq.query, "{sql}");
            // Analysis results carry over.
            assert_eq!(
                ebcheck(&back, &ds.access).effectively_bounded,
                wq.expect_effectively_bounded,
                "{}",
                wq.query.name()
            );
        }
    }
}

#[test]
fn parsed_query_plans_and_runs() {
    let ds = bounded_cq::workload::tpch::dataset();
    let sql = "SELECT l.l_partkey
               FROM orders o, lineitem l
               WHERE o.o_custkey = 42
                 AND o.o_orderstatus = 1
                 AND l.l_orderkey = o.o_orderkey
                 AND l.l_shipmode = 3";
    let q = parse_spc(ds.catalog.clone(), "parsed", sql).unwrap();
    let plan = qplan(&q, &ds.access).unwrap();
    let db = ds.build(1.0);
    let out = eval_dq(&db, &plan, &ds.access).unwrap();
    let check = baseline(
        &db,
        &q,
        &ds.access,
        BaselineOptions {
            mode: BaselineMode::FullScan,
            work_budget: None,
        },
    )
    .unwrap();
    assert_eq!(check.result().unwrap(), &out.result);
}

#[test]
fn parsed_template_feeds_dominating_parameters() {
    use bounded_cq::core::dominating::{find_dp, DominatingConfig};
    let ds = bounded_cq::workload::tpch::dataset();
    let sql = "SELECT o.o_orderkey
               FROM customer c, orders o
               WHERE c.c_mktsegment = ?seg
                 AND o.o_custkey = c.c_custkey";
    let q = parse_spc(ds.catalog.clone(), "tpl", sql).unwrap();
    assert_eq!(q.placeholder_names(), vec!["seg"]);
    // Binding the segment alone does not bound the query; findDPh proposes
    // the custkey class instead.
    let dp = find_dp(&q, &ds.access, DominatingConfig::default()).unwrap();
    let names: Vec<String> = dp.attrs.iter().map(|a| q.attr_name(*a)).collect();
    assert!(
        names.iter().any(|n| n.contains("custkey")),
        "expected custkey in {names:?}"
    );
}
