//! End-to-end demo of the TCP front end: boot a social-graph server,
//! bind the framed protocol on an ephemeral port, drive it with several
//! concurrent clients mixing reads and writes, and print what the
//! always-on metrics saw.
//!
//! Run with: `cargo run --release -p bcq-service --example net_serve`

use bcq_core::prelude::*;
use bcq_service::{NetClient, NetServer, Server, ServerConfig};
use bcq_storage::Database;
use std::sync::Arc;

fn main() -> core::result::Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::from_names(&[("friends", &["user_id", "friend_id"])])?;
    let mut access = AccessSchema::new(catalog.clone());
    access.add("friends", &["user_id"], &["friend_id"], 5000)?;

    let users = 200i64;
    let mut db = Database::new(catalog.clone());
    for u in 0..users {
        for k in 0..8 {
            let f = (u * 31 + k * 7 + 1) % users;
            db.insert(
                "friends",
                &[Value::str(format!("u{u}")), Value::str(format!("u{f}"))],
            )?;
        }
    }
    let server = Arc::new(Server::new(db, access, ServerConfig::default()));

    let template = SpcQuery::builder(catalog, "friends_of")
        .atom("friends", "f")
        .eq_param(("f", "user_id"), "uid")
        .project(("f", "friend_id"))
        .build()?;

    let net = NetServer::bind(Arc::clone(&server), &[template], "127.0.0.1:0")?;
    println!("serving on {} (frames: [u32 LE len][payload])", net.addr());

    const CLIENTS: usize = 4;
    const OPS: usize = 500;
    let addr = net.addr();
    std::thread::scope(
        |scope| -> core::result::Result<(), Box<dyn std::error::Error>> {
            let mut handles = Vec::new();
            for c in 0..CLIENTS {
                handles.push(scope.spawn(move || -> core::result::Result<usize, String> {
                    let mut client = NetClient::connect(addr).map_err(|e| e.to_string())?;
                    client.ping().map_err(|e| e.to_string())?;
                    let mut rows = 0usize;
                    for i in 0..OPS {
                        if i % 50 == 7 {
                            client
                                .insert(
                                    "friends",
                                    &[
                                        Value::str(format!("u{}", c as i64)),
                                        Value::str(format!("extra{c}_{i}")),
                                    ],
                                )
                                .map_err(|e| e.to_string())?;
                        } else {
                            let uid = Value::str(format!("u{}", (c * 31 + i) as i64 % 200));
                            rows += client
                                .exec("friends_of", &[("uid", uid)])
                                .map_err(|e| e.to_string())?
                                .len();
                        }
                    }
                    Ok(rows)
                }));
            }
            let mut total_rows = 0usize;
            for h in handles {
                total_rows += h.join().expect("client thread panicked")?;
            }
            println!("{CLIENTS} clients x {OPS} requests: {total_rows} answer rows");
            Ok(())
        },
    )?;

    let frames = net.frames_served();
    net.shutdown();

    let snap = server.metrics_snapshot();
    println!(
        "frames served: {frames}; cache: {} miss / {} hits; writes: {}; \
         latch conflicts: {}; bounded p50 {} ns p99 {} ns",
        snap.cache.misses,
        snap.cache.hits,
        snap.writes.inserts,
        snap.writes.conflicts,
        snap.lane(bcq_service::LaneKind::Bounded)
            .latency
            .quantile(0.50),
        snap.lane(bcq_service::LaneKind::Bounded)
            .latency
            .quantile(0.99),
    );
    assert_eq!(frames as usize, CLIENTS * (OPS + 1));
    assert_eq!(snap.cache.misses, 1, "one compile serves every connection");
    Ok(())
}
