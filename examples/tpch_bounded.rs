//! Which TPC-H-style queries are bounded? A query-optimizer's view.
//!
//! Walks the 15-query TPCH workload and classifies each query the way the
//! paper's Section 1 flowchart suggests a DBMS should:
//!
//! 1. effectively bounded → generate the bounded plan (with its `Σ M_i`);
//! 2. not effectively bounded but has dominating parameters → report which
//!    parameters to ask the user for;
//! 3. otherwise → fall back to conventional evaluation.
//!
//! Run with: `cargo run --release --example tpch_bounded`

use bounded_cq::core::dominating::{find_dp, DominatingConfig};
use bounded_cq::core::mbounded::{min_dq_bound_exact, min_dq_bound_greedy};
use bounded_cq::prelude::*;
use bounded_cq::workload::tpch;

fn main() -> Result<()> {
    let ds = tpch::dataset();
    println!(
        "TPCH: {} relations, {} attributes, {} access constraints\n",
        ds.catalog.len(),
        ds.catalog.total_attributes(),
        ds.access.len()
    );
    println!(
        "{:<22} {:>6} {:>6} {:>9} {:>9} {:>12}  plan/route",
        "query", "#-sel", "#-prod", "bounded", "eff.bnd", "Σ M_i"
    );

    for wq in &ds.queries {
        let q = &wq.query;
        let b = bcheck(q, &ds.access).bounded;
        let eb = ebcheck(q, &ds.access).effectively_bounded;
        let (bound, route) = if eb {
            let plan = qplan(q, &ds.access)?;
            (
                plan.cost_bound().to_string(),
                format!("bounded plan, {} fetch steps", plan.steps().len()),
            )
        } else if let Some(dp) = find_dp(q, &ds.access, DominatingConfig::default()) {
            let names: Vec<String> = dp.attrs.iter().map(|a| q.attr_name(*a)).collect();
            ("-".into(), format!("ask user for {{{}}}", names.join(", ")))
        } else {
            ("-".into(), "conventional evaluation".into())
        };
        println!(
            "{:<22} {:>6} {:>6} {:>9} {:>9} {:>12}  {route}",
            q.name(),
            q.num_sel(),
            q.num_prod(),
            b,
            eb,
            bound
        );
    }

    // For one query, compare the greedy plan bound with the exact optimum
    // (Theorem 8: minimizing is NP-complete; the gap here is the price of
    // polynomial time).
    let wq = ds
        .queries
        .iter()
        .find(|w| w.query.name() == "tpch_region_nations")
        .expect("workload query exists");
    let greedy = min_dq_bound_greedy(&wq.query, &ds.access).expect("effectively bounded");
    let exact = min_dq_bound_exact(&wq.query, &ds.access, 16).expect("search fits the cap");
    println!(
        "\n{}: greedy Σ M_i = {greedy}, exact minimum = {exact}",
        wq.query.name()
    );

    // And run the bounded plans for real at SF 4.
    let db = ds.build(4.0);
    println!(
        "\nexecuting the effectively bounded queries at SF 4 ({} tuples):",
        db.total_tuples()
    );
    for wq in ds.effectively_bounded_queries() {
        let plan = qplan(&wq.query, &ds.access)?;
        let out = eval_dq(&db, &plan, &ds.access)?;
        println!(
            "  {:<22} {:>4} rows, |DQ| = {:>4}, {:?}",
            wq.query.name(),
            out.result.len(),
            out.dq_tuples(),
            out.elapsed
        );
    }
    Ok(())
}
