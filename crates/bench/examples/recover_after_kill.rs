//! Crash-recovery smoke against a real process kill: run with
//! `cargo run --release -p bcq-bench --example recover_after_kill`.
//!
//! The parent re-execs itself as `--writer <dir>`: a durable server over
//! a [`DirLog`] in `<dir>`, `SyncPolicy::Always`, inserting sequential
//! rows forever and acknowledging each durable insert by renaming a
//! counter file into place. Once enough inserts are acknowledged the
//! parent SIGKILLs the writer mid-flight — no drop glue, no flush — then
//! recovers from the directory and asserts the contract that matters:
//!
//! * every **acknowledged** insert survived (`SyncPolicy::Always`), and
//! * the recovered rows are exactly the gap-free prefix `0..n` — replay
//!   stops at the first hole, never resurrects a torn suffix;
//!
//! then keeps writing on the recovered server, checkpoints, reopens, and
//! checks the post-crash writes survived a clean restart too. CI runs
//! this as the recover-after-kill step.

use bcq_core::access::AccessSchema;
use bcq_core::prelude::*;
use bcq_service::{DirLog, DurabilityConfig, LogStorage, Server, ServerConfig, SyncPolicy};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

const EVENTS: RelId = RelId(0);
/// Acknowledged inserts the parent waits for before pulling the plug.
const KILL_AFTER: u64 = 500;
/// The writer checkpoints here, so recovery exercises snapshot + tail
/// replay, not just a cold log scan.
const CHECKPOINT_AT: u64 = 300;

fn catalog() -> Arc<Catalog> {
    Catalog::from_names(&[("events", &["id", "v"])]).unwrap()
}

fn access() -> AccessSchema {
    let mut a = AccessSchema::new(catalog());
    a.add("events", &["id"], &["v"], 8).unwrap();
    a
}

fn open(dir: &Path) -> Server {
    let log: Arc<dyn LogStorage> = Arc::new(DirLog::open(dir).unwrap());
    let durability = DurabilityConfig {
        policy: SyncPolicy::Always,
        keep_snapshots: 2,
    };
    let (server, _report, _views) =
        Server::open(log, access(), ServerConfig::default(), durability, &[]).unwrap();
    server
}

fn row(i: u64) -> [Value; 2] {
    [Value::int(i as i64), Value::int((i * 7 + 1) as i64)]
}

fn ack_path(dir: &Path) -> std::path::PathBuf {
    dir.join("acked")
}

fn read_acked(dir: &Path) -> u64 {
    std::fs::read_to_string(ack_path(dir))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// The victim: write forever, acknowledge each durable insert, die by
/// SIGKILL whenever the parent decides.
fn writer(dir: &Path) -> ! {
    let server = open(dir);
    let tmp = dir.join("acked.tmp");
    for i in 0.. {
        server.insert("events", &row(i)).unwrap();
        // The insert returned, so its WAL record is fsynced
        // (`SyncPolicy::Always`) — only now may we acknowledge it.
        std::fs::write(&tmp, format!("{}", i + 1)).unwrap();
        std::fs::rename(&tmp, ack_path(dir)).unwrap();
        if i + 1 == CHECKPOINT_AT {
            server.checkpoint().unwrap();
        }
    }
    unreachable!()
}

/// Recovered rows must be exactly `0..n` for some `n >= acked`.
fn assert_prefix(server: &Server, at_least: u64, label: &str) -> u64 {
    let snap = server.snapshot();
    let mut ids: Vec<i64> = snap
        .value_rows(EVENTS)
        .map(|r| match &r[0] {
            Value::Int(i) => *i,
            other => panic!("non-int id {other:?}"),
        })
        .collect();
    ids.sort_unstable();
    let n = ids.len() as u64;
    assert!(
        n >= at_least,
        "{label}: only {n} rows recovered, {at_least} were acknowledged durable"
    );
    let expect: Vec<i64> = (0..n as i64).collect();
    assert_eq!(
        ids, expect,
        "{label}: recovered ids are not a gap-free prefix"
    );
    n
}

fn main() {
    let mut args = std::env::args().skip(1);
    if let Some(flag) = args.next() {
        assert_eq!(
            flag, "--writer",
            "usage: recover_after_kill [--writer <dir>]"
        );
        let dir = std::path::PathBuf::from(args.next().expect("--writer needs a directory"));
        writer(&dir);
    }

    let dir = std::env::temp_dir().join(format!("bcq_recover_after_kill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .arg("--writer")
        .arg(&dir)
        .spawn()
        .unwrap();

    // Wait for the writer to get real work durable, then kill it cold.
    let deadline = Instant::now() + Duration::from_secs(120);
    while read_acked(&dir) < KILL_AFTER {
        assert!(Instant::now() < deadline, "writer made no progress");
        if let Some(status) = child.try_wait().unwrap() {
            panic!("writer exited early: {status}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().unwrap(); // SIGKILL: no flush, no drop glue
    child.wait().unwrap();
    let acked = read_acked(&dir);
    println!("killed writer with {acked} inserts acknowledged");

    // Recover: every acknowledged insert present, rows a gap-free prefix.
    let server = open(&dir);
    let recovered = assert_prefix(&server, acked, "after kill");
    println!("recovered {recovered} rows (>= {acked} acknowledged)");

    // Life goes on: write past the crash, checkpoint, restart cleanly.
    for i in recovered..recovered + 50 {
        server.insert("events", &row(i)).unwrap();
    }
    server.checkpoint().unwrap();
    drop(server);
    let reopened = open(&dir);
    let final_rows = assert_prefix(&reopened, recovered + 50, "after clean restart");
    println!("clean restart serves {final_rows} rows — recover-after-kill OK");

    let _ = std::fs::remove_dir_all(&dir);
}
