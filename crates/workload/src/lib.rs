#![warn(missing_docs)]
//! # bcq-workload — the Section 6 experimental workloads
//!
//! Synthetic, schema-faithful replacements for the paper's three datasets
//! (the originals are not redistributable; see DESIGN.md §2.3 for the
//! substitution argument):
//!
//! * [`tfacc`] — UK road accidents ⋈ NaPTAN: 19 tables, 113 attributes,
//!   84 access constraints, 15 queries.
//! * [`mot`] — MOT vehicle tests joined to one 36-attribute table,
//!   27 constraints, 15 queries (self-joins via renaming).
//! * [`tpch`] — TPC-H's 8 relations with its fixed fan-outs,
//!   61 constraints, 15 queries.
//!
//! Every generator enforces its access schema **by construction** and is
//! deterministic in `(scale, seed)`.

pub mod gen;
pub mod mot;
pub mod par;
pub mod source;
pub mod spec;
pub mod tfacc;
pub mod tpch;

pub use par::{load_par, load_range_par, ParLoadOptions};
pub use source::{load, load_range, RowSource};
pub use spec::{Dataset, WorkloadQuery};

/// All three datasets, in paper order.
pub fn all_datasets() -> Vec<Dataset> {
    vec![tfacc::dataset(), mot::dataset(), tpch::dataset()]
}
