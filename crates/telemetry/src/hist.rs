//! Lock-free log-linear latency histograms (HDR-style fixed bucket layout).
//!
//! The record path is a single relaxed `fetch_add` on a preallocated
//! bucket: no lock, no allocation, no retry loop. Bucket boundaries are
//! **log-linear**: values below 2⁵ get exact unit buckets; above that,
//! every power-of-two octave is split into 2⁵ = 32 linear sub-buckets, so
//! the recorded value is always within `1/32` (≈ 3.1 %) of the bucket it
//! lands in. That resolution is fixed at compile time — the layout never
//! adapts, which is what makes the histogram mergeable bucket-by-bucket
//! and the record path branch-predictable.
//!
//! Counts above [`MAX_TRACKABLE`] (≈ 2⁴⁰ ns ≈ 18 minutes) saturate into
//! the top bucket rather than being dropped, so `count()` is always the
//! number of `record` calls.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear buckets.
pub const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Number of log-linear octaves tracked above the exact range.
const OCTAVES: usize = 36;
/// Total number of buckets in every histogram (fixed layout).
pub const NUM_BUCKETS: usize = SUBS + OCTAVES * SUBS;
/// Values at or above this saturate into the top bucket.
pub const MAX_TRACKABLE: u64 = ((SUBS + (SUBS - 1)) as u64) << (OCTAVES - 1);

/// Maps a value to its bucket index. Total (every `u64` maps somewhere)
/// and monotone (larger values never map to smaller buckets).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    // Highest set bit h >= SUB_BITS; the octave keeps the top SUB_BITS+1
    // bits, the sub-bucket is the SUB_BITS bits below the leading one.
    let h = 63 - v.leading_zeros();
    let octave = (h - SUB_BITS) as usize;
    let sub = ((v >> (h - SUB_BITS)) as usize) - SUBS;
    (SUBS + octave * SUBS + sub).min(NUM_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i` (the smallest value mapping to it).
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if i < SUBS {
        i as u64
    } else {
        let octave = (i - SUBS) / SUBS;
        let sub = (i - SUBS) % SUBS;
        ((SUBS + sub) as u64) << octave
    }
}

/// Width of bucket `i`; its values are `lower .. lower + width`.
#[inline]
pub fn bucket_width(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if i < SUBS {
        1
    } else {
        1u64 << ((i - SUBS) / SUBS)
    }
}

/// A fixed-layout, lock-free histogram. `record` is wait-free: one
/// relaxed `fetch_add` on the value's bucket.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.snapshot().count())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram with all buckets preallocated.
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram { buckets }
    }

    /// Records one observation. Wait-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts. Concurrent recording is
    /// allowed; the snapshot is per-bucket atomic (counts racing in during
    /// the copy land in either this snapshot or the next).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistSnapshot {
    /// A snapshot with zero observations.
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds `other`'s counts into `self`. Because the bucket layout is
    /// fixed, `merge` is exact: the result equals the histogram of the
    /// concatenated observation streams (merge is associative and
    /// commutative, bucket by bucket).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), estimated as the midpoint of the
    /// bucket holding the `ceil(q · count)`-th smallest observation. The
    /// estimate is within the bucket's width of the true value, i.e. a
    /// relative error of at most `1/2^SUB_BITS` (≈ 3.1 %) for values in
    /// the log-linear range. Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower(i) + bucket_width(i) / 2;
            }
        }
        unreachable!("rank <= count")
    }

    /// Upper edge of the highest non-empty bucket (an upper bound on the
    /// maximum observation; exact for values in the unit-bucket range).
    pub fn max(&self) -> u64 {
        match self.buckets.iter().rposition(|&c| c > 0) {
            Some(i) => bucket_lower(i) + bucket_width(i) - 1,
            None => 0,
        }
    }

    /// Approximate mean: Σ (bucket midpoint × count) / count, so it
    /// carries the same ≤ 3.1 % per-observation error as [`Self::quantile`].
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (bucket_lower(i) + bucket_width(i) / 2) as f64)
            .sum();
        sum / count as f64
    }

    /// Non-empty buckets as `(lower_bound, width, count)` triples, in
    /// ascending value order — the raw exposition format.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), bucket_width(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_lower_and_upper_edges() {
        // Every bucket's inclusive lower and upper edge map back to it.
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower(i);
            let w = bucket_width(i);
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            if i < NUM_BUCKETS - 1 {
                assert_eq!(bucket_index(lo + w - 1), i, "upper edge of bucket {i}");
                // Boundaries tile the axis with no gaps or overlaps.
                assert_eq!(bucket_lower(i + 1), lo + w, "bucket {i} abuts {}", i + 1);
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            1000,
            1_000_000,
            MAX_TRACKABLE - 1,
            MAX_TRACKABLE,
            u64::MAX,
        ];
        let mut last = 0;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i >= last, "monotone at {v}");
            assert!(i < NUM_BUCKETS);
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1, "saturates");
    }

    #[test]
    fn quantile_error_is_within_bucket_resolution() {
        // A geometric sweep: the estimate must stay within 1/32 relative
        // error of the true sample for every quantile probed.
        let h = Histogram::new();
        let mut values: Vec<u64> = Vec::new();
        let mut v = 1u64;
        while v < 100_000_000 {
            for k in 0..7 {
                values.push(v + k * (v / 10));
            }
            v = v.saturating_mul(3) / 2 + 1;
        }
        for &x in &values {
            h.record(x);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let est = snap.quantile(q);
            let err = (est as f64 - truth as f64).abs();
            let bound = (truth as f64) / 32.0 + 1.0;
            assert!(
                err <= bound,
                "q={q}: estimate {est} vs true {truth} (err {err} > bound {bound})"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_exact() {
        let samples: [&[u64]; 3] = [&[1, 5, 900, 40_000], &[2, 2, 2, 77], &[1_000_000, 31]];
        let snaps: Vec<HistSnapshot> = samples
            .iter()
            .map(|s| {
                let h = Histogram::new();
                for &v in *s {
                    h.record(v);
                }
                h.snapshot()
            })
            .collect();

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = snaps[0].clone();
        left.merge(&snaps[1]);
        left.merge(&snaps[2]);
        let mut bc = snaps[1].clone();
        bc.merge(&snaps[2]);
        let mut right = snaps[0].clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // ...and equals the histogram of the concatenated stream.
        let all = Histogram::new();
        for s in samples {
            for &v in s {
                all.record(v);
            }
        }
        assert_eq!(left, all.snapshot());
        assert_eq!(left.count(), 10);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads = 4;
        let per_thread = 100_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        // Mix of small exact values and log-range values.
                        h.record((i % 31) + (t as u64) * 1000);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), threads as u64 * per_thread);
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let s = HistSnapshot::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.nonzero_buckets().count(), 0);
    }
}
