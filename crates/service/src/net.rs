//! A concurrent TCP front end for [`Server`] — length-prefixed frames
//! over plain threads, no async runtime.
//!
//! The serving tier's concurrency claims (per-relation write latches,
//! group commit, lock-free snapshot reads) only mean something if real
//! concurrent clients exercise them through a real request path. This
//! module provides that path:
//!
//! * **Wire format** — every message (both directions) is one frame:
//!   a little-endian `u32` payload length followed by that many bytes of
//!   UTF-8 text. Small, inspectable, and trivially correct to parse.
//! * **Threading model** — [`NetServer::bind`] spawns one accept thread;
//!   each accepted connection gets its own thread owning a [`Session`],
//!   so per-connection state (session stats, thread-keyed profiles, the
//!   per-thread parameter environment) works exactly as it does for
//!   embedded callers. No executor, no reactors: the kernel's scheduler
//!   is the only scheduler.
//! * **Commands** — a deliberately tiny text grammar (one line per
//!   request): `PING`, `EXEC <template> [param=value …]`,
//!   `INSERT <rel> <value …>`, `DELETE <rel> <value …>`. Values are
//!   typed tokens: `i:42` (integer), `s:alice` (string), `n:` (null).
//!   Templates are compiled [`SpcQuery`]s registered at bind time and
//!   served through the plan cache, so a network `EXEC` takes the same
//!   prepared fast path an embedded [`Session::query`] does.
//!
//! The text grammar is whitespace-delimited, so string values must be
//! single tokens (no spaces/tabs/newlines) — which every workload
//! identifier is. [`NetClient`] enforces this on send.
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] flips a flag, unblocks `accept` with a
//! self-connection, then joins the accept thread and every connection
//! thread. Connection threads exit when their peer disconnects, so
//! callers drop their [`NetClient`]s first.

use crate::server::{Server, Session};
use bcq_core::prelude::{SpcQuery, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Upper bound on a single frame's payload (defense against a corrupt or
/// hostile length prefix, not a practical limit — a million-row answer of
/// short tokens fits comfortably).
const MAX_FRAME: u32 = 64 << 20;

/// Errors surfaced by [`NetClient`] calls.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (socket closed, frame malformed, …).
    Io(io::Error),
    /// The server answered `ERR …` — the request reached it and failed.
    Remote(String),
    /// The reply (or an argument) did not match the protocol grammar.
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport: {e}"),
            NetError::Remote(m) => write!(f, "server error: {m}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one `[u32 LE len][payload]` frame.
fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    // One write per frame: splitting the length prefix and payload into
    // separate writes lets Nagle hold the payload behind the unacked
    // prefix segment, and the peer's delayed ACK turns every round trip
    // into a ~40 ms stall.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` means the peer closed cleanly **between**
/// frames; a close mid-frame is an error.
fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len[..1])? {
        0 => return Ok(None), // clean EOF
        _ => r.read_exact(&mut len[1..])?,
    }
    let n = u32::from_le_bytes(len);
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {n} exceeds limit"),
        ));
    }
    let mut buf = vec![0u8; n as usize];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

// ---------------------------------------------------------------------
// Typed value tokens
// ---------------------------------------------------------------------

/// Renders a value as a wire token. Fails on strings that are not single
/// whitespace-free tokens (the grammar could not round-trip them).
fn fmt_value(v: &Value) -> Result<String, NetError> {
    match v {
        Value::Null => Ok("n:".to_string()),
        Value::Int(i) => Ok(format!("i:{i}")),
        Value::Str(s) => {
            if s.is_empty() || s.chars().any(char::is_whitespace) {
                return Err(NetError::Protocol(format!(
                    "string {s:?} is not a single non-empty token"
                )));
            }
            Ok(format!("s:{s}"))
        }
    }
}

/// Parses a wire token back into a value.
fn parse_value(tok: &str) -> Result<Value, String> {
    if let Some(i) = tok.strip_prefix("i:") {
        return i
            .parse::<i64>()
            .map(Value::int)
            .map_err(|_| format!("bad integer token {tok:?}"));
    }
    if let Some(s) = tok.strip_prefix("s:") {
        if s.is_empty() {
            return Err("empty string token".to_string());
        }
        return Ok(Value::str(s));
    }
    if tok == "n:" {
        return Ok(Value::Null);
    }
    Err(format!("unknown value token {tok:?} (want i:/s:/n:)"))
}

// ---------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------

struct NetInner {
    server: Arc<Server>,
    /// Templates registered at bind time, keyed by query name. Immutable
    /// afterwards, so connection threads read it lock-free.
    templates: BTreeMap<String, SpcQuery>,
    stop: AtomicBool,
    /// Frames answered across all connections (including errors).
    served: AtomicU64,
    /// Connection-thread handles, joined on shutdown.
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// A listening front end over a [`Server`]. Dropping it without calling
/// [`NetServer::shutdown`] leaks the accept thread until process exit.
pub struct NetServer {
    inner: Arc<NetInner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port), registers the
    /// query `templates` by name, and starts accepting connections.
    pub fn bind(
        server: Arc<Server>,
        templates: &[SpcQuery],
        addr: impl ToSocketAddrs,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(NetInner {
            server,
            templates: templates
                .iter()
                .map(|q| (q.name().to_string(), q.clone()))
                .collect(),
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_inner));
        Ok(NetServer {
            inner,
            addr: local,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total frames answered so far across all connections.
    pub fn frames_served(&self) -> u64 {
        self.inner.served.load(Ordering::Relaxed)
    }

    /// Stops accepting, then joins the accept thread and every
    /// connection thread. Callers must drop their clients first —
    /// connection threads run until their peer hangs up.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop; it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns =
            std::mem::take(&mut *self.inner.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for h in conns {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<NetInner>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.stop.load(Ordering::SeqCst) {
            return; // the shutdown self-connection (or a late client)
        }
        let conn_inner = Arc::clone(&inner);
        let handle = std::thread::spawn(move || serve_conn(stream, conn_inner));
        inner
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

/// One connection: a dedicated thread owning a [`Session`], answering
/// frames until the peer disconnects.
fn serve_conn(mut stream: TcpStream, inner: Arc<NetInner>) {
    // Request/reply framing: every reply must hit the wire immediately,
    // not sit in the kernel waiting for more data to coalesce.
    let _ = stream.set_nodelay(true);
    let mut session = inner.server.session();
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        let reply = match std::str::from_utf8(&payload) {
            Ok(line) => handle_request(line, &mut session, &inner.templates),
            Err(_) => "ERR request is not UTF-8".to_string(),
        };
        inner.served.fetch_add(1, Ordering::Relaxed);
        if write_frame(&mut stream, reply.as_bytes()).is_err() {
            return;
        }
    }
}

/// Executes one request line; always returns a reply payload (`OK …` or
/// `ERR …`, with `EXEC` answers appending one line per row).
fn handle_request(
    line: &str,
    session: &mut Session,
    templates: &BTreeMap<String, SpcQuery>,
) -> String {
    match dispatch(line, session, templates) {
        Ok(reply) => reply,
        // Keep errors single-line so the reply grammar stays trivial.
        Err(msg) => format!("ERR {}", msg.replace(['\n', '\r'], " ")),
    }
}

fn dispatch(
    line: &str,
    session: &mut Session,
    templates: &BTreeMap<String, SpcQuery>,
) -> Result<String, String> {
    let mut toks = line.split_whitespace();
    let cmd = toks.next().ok_or("empty request")?;
    match cmd {
        "PING" => Ok("OK pong".to_string()),
        "EXEC" => {
            let name = toks.next().ok_or("EXEC needs a template name")?;
            let tpl = templates
                .get(name)
                .ok_or_else(|| format!("unknown template {name:?}"))?;
            let mut bind = BTreeMap::new();
            for tok in toks {
                let (param, val) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("binding {tok:?} is not param=value"))?;
                bind.insert(param.to_string(), parse_value(val)?);
            }
            let resp = session.query(tpl, &bind).map_err(|e| e.to_string())?;
            let rows = resp
                .rows()
                .ok_or("query did not finish within its budget")?;
            let mut out = format!("OK {}", rows.len());
            for row in rows.rows() {
                out.push('\n');
                let mut first = true;
                for v in row.iter() {
                    if !first {
                        out.push('\t');
                    }
                    first = false;
                    out.push_str(&fmt_value(v).map_err(|e| e.to_string())?);
                }
            }
            Ok(out)
        }
        "INSERT" => {
            let rel = toks.next().ok_or("INSERT needs a relation name")?;
            let row = toks.map(parse_value).collect::<Result<Vec<_>, _>>()?;
            let rid = session.insert(rel, &row).map_err(|e| e.to_string())?;
            Ok(format!("OK {rid}"))
        }
        "DELETE" => {
            let rel = toks.next().ok_or("DELETE needs a relation name")?;
            let row = toks.map(parse_value).collect::<Result<Vec<_>, _>>()?;
            let deleted = session.delete(rel, &row).map_err(|e| e.to_string())?;
            Ok(format!("OK {deleted}"))
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

/// A blocking client for the framed protocol: one request in flight at a
/// time per connection (spawn one client per thread for concurrency).
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects to a [`NetServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply round trips; Nagle only adds latency here.
        stream.set_nodelay(true)?;
        Ok(NetClient { stream })
    }

    /// Sends one request line, returns the reply payload with the
    /// leading `OK ` stripped (a remote `ERR` becomes [`NetError::Remote`]).
    fn round_trip(&mut self, line: &str) -> Result<String, NetError> {
        write_frame(&mut self.stream, line.as_bytes())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| NetError::Protocol("server closed the connection".to_string()))?;
        let text = String::from_utf8(payload)
            .map_err(|_| NetError::Protocol("reply is not UTF-8".to_string()))?;
        if let Some(rest) = text.strip_prefix("OK") {
            Ok(rest.strip_prefix(' ').unwrap_or(rest).to_string())
        } else if let Some(msg) = text.strip_prefix("ERR ") {
            Err(NetError::Remote(msg.to_string()))
        } else {
            Err(NetError::Protocol(format!("malformed reply {text:?}")))
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), NetError> {
        let r = self.round_trip("PING")?;
        if r == "pong" {
            Ok(())
        } else {
            Err(NetError::Protocol(format!("unexpected pong {r:?}")))
        }
    }

    /// Executes a registered template with the given bindings; returns
    /// the answer rows (sorted and deduplicated, like the embedded API).
    pub fn exec(
        &mut self,
        template: &str,
        bindings: &[(&str, Value)],
    ) -> Result<Vec<Vec<Value>>, NetError> {
        let mut line = format!("EXEC {template}");
        for (param, v) in bindings {
            line.push(' ');
            line.push_str(param);
            line.push('=');
            line.push_str(&fmt_value(v)?);
        }
        let reply = self.round_trip(&line)?;
        let mut lines = reply.split('\n');
        let count: usize = lines
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| NetError::Protocol("missing row count".to_string()))?;
        let mut rows = Vec::with_capacity(count);
        for line in lines {
            let row = if line.is_empty() {
                Vec::new() // the empty projection tuple of a Boolean query
            } else {
                line.split('\t')
                    .map(|t| parse_value(t).map_err(NetError::Protocol))
                    .collect::<Result<Vec<_>, _>>()?
            };
            rows.push(row);
        }
        if rows.len() != count {
            return Err(NetError::Protocol(format!(
                "row count mismatch: header {count}, body {}",
                rows.len()
            )));
        }
        Ok(rows)
    }

    /// Inserts one row through the server's maintained write path;
    /// returns the row id.
    pub fn insert(&mut self, rel: &str, row: &[Value]) -> Result<u32, NetError> {
        let mut line = format!("INSERT {rel}");
        for v in row {
            line.push(' ');
            line.push_str(&fmt_value(v)?);
        }
        let reply = self.round_trip(&line)?;
        reply
            .parse()
            .map_err(|_| NetError::Protocol(format!("bad row id {reply:?}")))
    }

    /// Deletes one copy of a row; `false` if no copy was stored.
    pub fn delete(&mut self, rel: &str, row: &[Value]) -> Result<bool, NetError> {
        let mut line = format!("DELETE {rel}");
        for v in row {
            line.push(' ');
            line.push_str(&fmt_value(v)?);
        }
        let reply = self.round_trip(&line)?;
        reply
            .parse()
            .map_err(|_| NetError::Protocol(format!("bad delete reply {reply:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use bcq_core::prelude::{AccessSchema, Catalog};
    use bcq_storage::Database;

    fn boot() -> (Arc<Server>, SpcQuery) {
        let catalog = Catalog::from_names(&[("friends", &["user_id", "friend_id"])]).unwrap();
        let mut access = AccessSchema::new(catalog.clone());
        access
            .add("friends", &["user_id"], &["friend_id"], 5000)
            .unwrap();
        let mut db = Database::new(catalog.clone());
        for i in 0..8 {
            db.insert("friends", &[Value::str("u0"), Value::str(format!("f{i}"))])
                .unwrap();
        }
        let server = Arc::new(Server::new(db, access, ServerConfig::default()));
        let tpl = SpcQuery::builder(catalog, "friends_of")
            .atom("friends", "f")
            .eq_param(("f", "user_id"), "uid")
            .project(("f", "friend_id"))
            .build()
            .unwrap();
        (server, tpl)
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());

        let mut bad = Vec::from((MAX_FRAME + 1).to_le_bytes());
        bad.extend_from_slice(b"x");
        assert!(read_frame(&mut &bad[..]).is_err());
    }

    #[test]
    fn value_tokens_round_trip() {
        for v in [Value::int(-7), Value::str("alice"), Value::Null] {
            let tok = fmt_value(&v).unwrap();
            assert_eq!(parse_value(&tok).unwrap(), v);
        }
        assert!(fmt_value(&Value::str("two words")).is_err());
        assert!(fmt_value(&Value::str("")).is_err());
        assert!(parse_value("i:notanint").is_err());
        assert!(parse_value("x:?").is_err());
    }

    #[test]
    fn network_answers_match_embedded_session() {
        let (server, tpl) = boot();
        let net = NetServer::bind(
            Arc::clone(&server),
            std::slice::from_ref(&tpl),
            "127.0.0.1:0",
        )
        .unwrap();

        let mut client = NetClient::connect(net.addr()).unwrap();
        client.ping().unwrap();

        let rows = client
            .exec("friends_of", &[("uid", Value::str("u0"))])
            .unwrap();
        let mut session = server.session();
        let mut bind = BTreeMap::new();
        bind.insert("uid".to_string(), Value::str("u0"));
        let embedded = session.query(&tpl, &bind).unwrap();
        let expect: Vec<Vec<Value>> = embedded
            .rows()
            .unwrap()
            .rows()
            .iter()
            .map(|r| r.to_vec())
            .collect();
        assert_eq!(rows, expect);
        assert_eq!(rows.len(), 8);

        // Writes through the wire are real maintained writes.
        client
            .insert("friends", &[Value::str("u0"), Value::str("f_new")])
            .unwrap();
        assert_eq!(
            client
                .exec("friends_of", &[("uid", Value::str("u0"))])
                .unwrap()
                .len(),
            9
        );
        assert!(client
            .delete("friends", &[Value::str("u0"), Value::str("f_new")])
            .unwrap());
        assert!(!client
            .delete("friends", &[Value::str("u0"), Value::str("f_new")])
            .unwrap());

        // Errors come back as Remote, and the connection stays usable.
        match client.exec("no_such_template", &[]) {
            Err(NetError::Remote(m)) => assert!(m.contains("unknown template")),
            other => panic!("expected remote error, got {other:?}"),
        }
        match client.insert("no_such_rel", &[Value::int(1)]) {
            Err(NetError::Remote(_)) => {}
            other => panic!("expected remote error, got {other:?}"),
        }
        client.ping().unwrap();

        assert!(net.frames_served() >= 8);
        drop(client);
        net.shutdown();
    }

    #[test]
    fn concurrent_clients_interleave_reads_and_disjoint_writes() {
        let (server, tpl) = boot();
        let net = NetServer::bind(Arc::clone(&server), &[tpl], "127.0.0.1:0").unwrap();
        let addr = net.addr();

        const CLIENTS: usize = 4;
        const OPS: usize = 25;
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).unwrap();
                    for i in 0..OPS {
                        let me = format!("writer{c}");
                        let friend = format!("f{c}_{i}");
                        client
                            .insert("friends", &[Value::str(&me), Value::str(&friend)])
                            .unwrap();
                        let rows = client
                            .exec("friends_of", &[("uid", Value::str(&me))])
                            .unwrap();
                        assert_eq!(rows.len(), i + 1, "client {c} sees its own writes");
                    }
                });
            }
        });

        // Every client's rows landed; the base data is untouched.
        let mut check = NetClient::connect(addr).unwrap();
        for c in 0..CLIENTS {
            let rows = check
                .exec("friends_of", &[("uid", Value::str(format!("writer{c}")))])
                .unwrap();
            assert_eq!(rows.len(), OPS);
        }
        assert_eq!(
            check
                .exec("friends_of", &[("uid", Value::str("u0"))])
                .unwrap()
                .len(),
            8
        );
        drop(check);
        net.shutdown();
        assert_eq!(
            server.metrics_snapshot().writes.inserts,
            (CLIENTS * OPS) as u64
        );
    }
}
