#![warn(missing_docs)]
//! Offline stand-in for the `criterion` crate.
//!
//! This repository builds without network access, so the Criterion API
//! surface our benches use — `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`, the group tuning knobs, and the
//! `criterion_group!`/`criterion_main!` macros — is implemented locally.
//!
//! Measurement model: each `bench_function` warms up for the configured
//! warm-up time, then runs timed batches until the measurement time is
//! spent (minimum `sample_size` samples), and reports the minimum, median,
//! and mean per-iteration time. No statistics beyond that — the point is a
//! stable, dependency-free number on stdout, not confidence intervals.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working like upstream.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(
            &id.into(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }
}

/// A group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up time before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total time to spend measuring each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(
            &id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Ends the group (upstream flushes reports here; we print eagerly).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; drives the timing loop.
pub struct Bencher {
    mode: BencherMode,
    /// Accumulated samples of (iterations, elapsed).
    samples: Vec<(u64, Duration)>,
}

enum BencherMode {
    /// Calibration pass: determine iterations per batch.
    Calibrate { iters_hint: u64 },
    /// Timed pass: run exactly `iters` iterations.
    Measure { iters: u64 },
}

impl Bencher {
    /// Times `f`, batching iterations so that per-batch timer overhead is
    /// negligible.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        match self.mode {
            BencherMode::Calibrate { ref mut iters_hint } => {
                // Measure one call to size the batches.
                let start = Instant::now();
                black_box(f());
                let once = start.elapsed().max(Duration::from_nanos(50));
                // Aim for batches of ~10 ms.
                let per_batch = (10_000_000u128 / once.as_nanos()).clamp(1, 1_000_000) as u64;
                *iters_hint = per_batch;
            }
            BencherMode::Measure { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                self.samples.push((iters, start.elapsed()));
            }
        }
    }
}

fn run_bench(
    id: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration: how many iterations fit a ~10 ms batch?
    let mut b = Bencher {
        mode: BencherMode::Calibrate { iters_hint: 1 },
        samples: Vec::new(),
    };
    f(&mut b);
    let iters = match b.mode {
        BencherMode::Calibrate { iters_hint } => iters_hint,
        BencherMode::Measure { .. } => unreachable!(),
    };

    // Warm-up.
    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up_time {
        let mut wb = Bencher {
            mode: BencherMode::Measure { iters },
            samples: Vec::new(),
        };
        f(&mut wb);
        if wb.samples.is_empty() {
            break; // closure never called iter(); nothing to measure
        }
    }

    // Measurement.
    let mut samples: Vec<Duration> = Vec::new();
    let meas_start = Instant::now();
    while samples.len() < sample_size || meas_start.elapsed() < measurement_time {
        let mut mb = Bencher {
            mode: BencherMode::Measure { iters },
            samples: Vec::new(),
        };
        f(&mut mb);
        if mb.samples.is_empty() {
            break;
        }
        for (n, elapsed) in mb.samples {
            samples.push(elapsed / n.max(1) as u32);
        }
        if meas_start.elapsed() > measurement_time * 4 {
            break; // hard stop for very slow benches
        }
    }

    if samples.is_empty() {
        eprintln!("{id:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    eprintln!(
        "{id:<50} min {min:>10.2?}  median {median:>10.2?}  mean {mean:>10.2?}  ({} samples x {iters} iters)",
        samples.len()
    );
}

/// Declares a benchmark group function, mirroring upstream's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn top_level_bench_function() {
        let mut c = Criterion {
            sample_size: 2,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(2),
        };
        let mut ran = false;
        c.bench_function("direct", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(ran);
    }
}
