#![warn(missing_docs)]
//! # bounded-cq — Bounded Conjunctive Queries
//!
//! A Rust reproduction of *Bounded Conjunctive Queries* (Cao, Fan, Wo, Yu —
//! PVLDB 7(12), 2014): decide whether an SPC query can be answered by
//! fetching a **bounded** amount of data — independent of how big the
//! database is — under an *access schema* of cardinality constraints and
//! indices, and if so, generate and execute the bounded query plan.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — queries, access schemas, `BCheck`/`EBCheck`,
//!   dominating parameters, `QPlan`, `M`-boundedness, Lemma 1 — plus the
//!   interned-row data plane ([`bcq_core::symbols`], [`bcq_core::row`]).
//! * [`storage`] — in-memory tables and constraint indices
//!   over interned rows, `D |= A` validation, constraint discovery.
//! * [`exec`] — the bounded executor `evalDQ`, the
//!   conventional-DBMS baseline, and the shared physical-operator
//!   pipeline ([`bcq_exec::pipeline`]) both run on.
//! * [`service`] — the prepared-query serving layer: compile
//!   a template once, cache the plan, execute per request against epoch
//!   snapshots under admission control.
//! * [`telemetry`] — serving-tier observability: always-on lock-free
//!   metrics, opt-in request tracing, zero-cost per-operator profiling.
//! * [`workload`] — the TFACC / MOT / TPCH experimental
//!   workloads of Section 6.
//!
//! ## Example: the paper's photo-tagging query
//!
//! ```
//! use bounded_cq::prelude::*;
//!
//! let catalog = Catalog::from_names(&[
//!     ("in_album", &["photo_id", "album_id"]),
//!     ("friends", &["user_id", "friend_id"]),
//!     ("tagging", &["photo_id", "tagger_id", "taggee_id"]),
//! ])?;
//!
//! // Access schema A0: Facebook-style limits plus indices (Example 2).
//! let mut a0 = AccessSchema::new(catalog.clone());
//! a0.add("in_album", &["album_id"], &["photo_id"], 1000)?;
//! a0.add("friends", &["user_id"], &["friend_id"], 5000)?;
//! a0.add("tagging", &["photo_id", "taggee_id"], &["tagger_id"], 1)?;
//!
//! // Q0: photos in album a0 in which u0 is tagged by a friend (Example 1).
//! let q0 = SpcQuery::builder(catalog.clone(), "Q0")
//!     .atom("in_album", "ia").atom("friends", "f").atom("tagging", "t")
//!     .eq_const(("ia", "album_id"), "a0")
//!     .eq_const(("f", "user_id"), "u0")
//!     .eq(("ia", "photo_id"), ("t", "photo_id"))
//!     .eq(("t", "tagger_id"), ("f", "friend_id"))
//!     .eq_const(("t", "taggee_id"), "u0")
//!     .project(("ia", "photo_id"))
//!     .build()?;
//!
//! assert!(ebcheck(&q0, &a0).effectively_bounded);
//! let plan = qplan(&q0, &a0)?;
//! assert_eq!(plan.cost_bound(), 7000); // at most 7000 tuples, ever
//!
//! // Execute it on a database.
//! let mut db = Database::new(catalog);
//! db.insert("in_album", &[Value::str("p1"), Value::str("a0")])?;
//! db.insert("friends", &[Value::str("u0"), Value::str("u1")])?;
//! db.insert("tagging", &[Value::str("p1"), Value::str("u1"), Value::str("u0")])?;
//! db.build_indexes(&a0);
//! let out = eval_dq(&db, &plan, &a0)?;
//! assert!(out.result.contains(&[Value::str("p1")]));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use bcq_core as core;
pub use bcq_durability as durability;
pub use bcq_exec as exec;
pub use bcq_service as service;
pub use bcq_storage as storage;
pub use bcq_telemetry as telemetry;
pub use bcq_workload as workload;

/// One-stop imports: everything from the core prelude plus the storage,
/// executor, and serving-layer entry points.
pub mod prelude {
    pub use bcq_core::prelude::*;
    pub use bcq_exec::{
        baseline, baseline_interpreted, eval_dq, eval_dq_interpreted, eval_dq_partials,
        eval_dq_with, eval_dq_with_interpreted, eval_ra, materialize_views, run_program,
        run_program_partials, BaselineMode, BaselineOptions, BaselineOutcome, DeltaStats,
        ExecOutcome, IncrementalAnswer, ParamEnv, PartialsOutcome, RaOutcome, ResultSet,
    };
    pub use bcq_service::{
        trace_thread, AdmissionPolicy, BudgetVerdict, DirLog, DurabilityConfig, Lane, LaneKind,
        MemLog, MetricsRegistry, MetricsSnapshot, NetClient, NetError, NetServer, OpProfile,
        Outcome, Phase, PreparedQuery, RecoveryReport, RequestStats, Response, Server,
        ServerConfig, ServiceError, Session, SessionStats, SharedDb, StepKind, StepProfile,
        SyncPolicy, ViewId, WalStats,
    };
    pub use bcq_storage::{
        discover_bound, dump_csv, load_csv, validate, Database, HashIndex, Loader, Meter,
        RelationShard, Table,
    };
    pub use bcq_workload::{
        all_datasets, load_par, load_range_par, Dataset, ParLoadOptions, WorkloadQuery,
    };
}
