//! Traffic-accident analytics on the TFACC workload: constraint discovery
//! and scale independence.
//!
//! Shows the full Section 6 methodology on one query:
//!
//! 1. *Discover* access constraints from the data (the paper extracted 84
//!    "by examining the size of active domains and dependencies" — e.g. at
//!    most 610 accidents on any single day).
//! 2. Check effective boundedness and build the plan.
//! 3. Grow the database 8× and watch `evalDQ` stay flat while the
//!    conventional baseline's cost grows with `|D|`.
//!
//! Run with: `cargo run --release --example traffic_analysis`

use bounded_cq::prelude::*;
use bounded_cq::workload::tfacc;

fn main() -> Result<()> {
    // 1. Discovery: what bounds does the data actually satisfy?
    let db = tfacc::generate(0.125, 7);
    println!(
        "--- constraint discovery on {} tuples ---",
        db.total_tuples()
    );
    for (rel, x, y) in [
        ("accident", vec!["date"], "aid"),
        ("accident", vec!["date", "district_id"], "aid"),
        ("vehicle", vec!["aid"], "vid"),
        ("casualty", vec!["aid"], "cid"),
    ] {
        let xs: Vec<&str> = x.clone();
        if let Some(n) = discover_bound(&db, rel, &xs, &[y]) {
            println!("  {rel}: ({}) -> ({y}, {n})", x.join(", "));
        }
    }
    println!("  (the shipped schema declares safe margins above these)\n");

    // 2. The workload query: vehicles of one type in accidents on one day.
    let ds = tfacc::dataset();
    let wq = ds
        .queries
        .iter()
        .find(|w| w.query.name() == "tfacc_day_vehicles")
        .expect("workload query exists");
    let report = ebcheck(&wq.query, &ds.access);
    println!("query: {}", wq.query);
    println!("effectively bounded: {}", report.effectively_bounded);
    let plan = qplan(&wq.query, &ds.access)?;
    println!("static bound on |DQ|: {} tuples\n", plan.cost_bound());

    // 3. Scale independence: |D| grows 8x, evalDQ stays put.
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>14} {:>14}",
        "scale", "|D|", "evalDQ", "|DQ|", "baseline", "base work"
    );
    for scale in [0.125, 0.25, 0.5, 1.0] {
        let db = ds.build(scale);
        let out = eval_dq(&db, &plan, &ds.access)?;
        let base = baseline(
            &db,
            &wq.query,
            &ds.access,
            BaselineOptions {
                mode: BaselineMode::ConstIndex,
                work_budget: None,
            },
        )?;
        println!(
            "{:>8} {:>12} {:>12.2?} {:>10} {:>14.2?} {:>14}",
            scale,
            db.total_tuples(),
            out.elapsed,
            out.dq_tuples(),
            base.elapsed(),
            base.meter().work()
        );
        assert_eq!(base.result().expect("no budget"), &out.result);
    }
    println!("\nevalDQ touches the same few tuples at every scale; the");
    println!("baseline's work grows linearly with |D| — Figure 5(a) in_vitro.");
    Ok(())
}
