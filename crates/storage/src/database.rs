//! Databases: a set of tables instantiating a catalog, plus the indices
//! declared by access schemas and the [`SymbolTable`] the tables' interned
//! cells are encoded against.
//!
//! The database is the **encode/decode boundary**: callers insert and read
//! [`Value`] rows; internally everything is fixed-width [`Cell`]s. Executors
//! encode query constants through [`Database::symbols`] (a read-only
//! `try_encode` — a constant whose string was never loaded simply matches
//! nothing) and decode only final answers.
//!
//! ## Sharding and the epoch vector clock
//!
//! Storage is sharded **by relation**: each relation's table, indices, and
//! epoch live in one [`RelationShard`] behind an `Arc`, and `Database`
//! itself is a cheap-to-clone vector of shard pointers plus a monotone
//! global **commit counter**. Mutations copy-on-write only the touched
//! shard ([`Arc::make_mut`]); untouched shards stay pointer-shared with
//! every clone and snapshot. Two staleness granularities fall out:
//!
//! * [`Database::epoch`] — the commit counter, advanced by every mutation:
//!   "did *anything* change?"
//! * [`Database::epoch_of`] — the vector clock, one component per relation,
//!   stamped with the commit number of the relation's last mutation: "did
//!   anything *this plan reads* change?" — the relation-scoped invalidation
//!   the serving layer's plan cache and registered views key on.

use crate::index::HashIndex;
use crate::shard::RelationShard;
use crate::table::Table;
use crate::wal::{WalOp, WalSink};
use bcq_core::access::{AccessConstraint, AccessSchema};
use bcq_core::error::{CoreError, Result};
use bcq_core::prelude::{Catalog, Cell, RelId, RowBuf, SymbolTable, Value};
use bcq_core::symbols::Sym;
use std::sync::Arc;

/// An instance `D` of a relational schema, with registered indices, sharded
/// by relation (see the module docs for the copy-on-write contract).
///
/// Every mutation — row inserts, deletes, bulk loads, index builds —
/// advances the monotone global **commit counter** and stamps the touched
/// relation's shard with it, so `epoch()` answers "anything changed?" and
/// `epoch_of(rel)` answers "did `rel` change?" by comparing integers.
#[derive(Debug, Clone)]
pub struct Database {
    catalog: Arc<Catalog>,
    symbols: Arc<SymbolTable>,
    shards: Vec<Arc<RelationShard>>,
    /// Global commit counter: max over the shard epochs, advanced first.
    commit: u64,
    /// Diagnostics: table cells copied by shard copy-on-write so far (index
    /// postings excluded). Carried along on clone; the write-amplification
    /// bench reads deltas of this.
    cow_cells: u64,
    /// Diagnostics: shard clones forced by outstanding references.
    cow_clones: u64,
    /// Optional write-ahead-log sink: every effective mutation delivers a
    /// [`WalOp`] record here, 1:1 with commit bumps (see [`crate::wal`]).
    /// Shared (not cleared) by `Clone`, since snapshots are read-only.
    wal: Option<Arc<dyn WalSink>>,
}

impl Database {
    /// Creates an empty instance of `catalog`.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        let shards = catalog
            .relations()
            .iter()
            .enumerate()
            .map(|(i, r)| Arc::new(RelationShard::new(Table::new(RelId(i), r.arity()))))
            .collect();
        Database {
            catalog,
            symbols: Arc::new(SymbolTable::new()),
            shards,
            commit: 0,
            cow_cells: 0,
            cow_clones: 0,
            wal: None,
        }
    }

    /// Rebuilds a database from durably stored parts — the snapshot-restore
    /// path. `shards` must cover every relation of `catalog` in order;
    /// each shard's epoch must not exceed `commit` (the restored global
    /// commit counter). Declared indices are rebuilt from the restored
    /// rows. No WAL sink is attached; the recovery layer attaches one
    /// after replay.
    pub fn restore(
        catalog: Arc<Catalog>,
        symbols: SymbolTable,
        shards: Vec<ShardState>,
        commit: u64,
    ) -> Result<Database> {
        if shards.len() != catalog.relations().len() {
            return Err(CoreError::Invalid(format!(
                "restore: {} shards for a {}-relation catalog",
                shards.len(),
                catalog.relations().len()
            )));
        }
        let shards = shards
            .into_iter()
            .enumerate()
            .map(|(i, state)| {
                let arity = catalog.relation(RelId(i)).arity();
                if state.cells.len() % arity != 0 {
                    return Err(CoreError::Invalid(format!(
                        "restore: relation {i} cell count {} not a multiple of arity {arity}",
                        state.cells.len()
                    )));
                }
                if state.epoch > commit {
                    return Err(CoreError::Invalid(format!(
                        "restore: relation {i} epoch {} beyond commit {commit}",
                        state.epoch
                    )));
                }
                let mut table = Table::new(RelId(i), arity);
                table.reserve_rows(state.cells.len() / arity);
                for row in state.cells.chunks_exact(arity) {
                    table.push(row);
                }
                let indexes = state
                    .indexes
                    .into_iter()
                    .map(|(x, y)| {
                        let idx = HashIndex::build(&table, &x, &y);
                        ((x, y), idx)
                    })
                    .collect();
                let mut shard = RelationShard::new(table);
                shard.indexes = indexes;
                shard.epoch = state.epoch;
                Ok(Arc::new(shard))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Database {
            catalog,
            symbols: Arc::new(symbols),
            shards,
            commit,
            cow_cells: 0,
            cow_clones: 0,
            wal: None,
        })
    }

    /// Attaches (or detaches) the write-ahead-log sink mutation records are
    /// delivered to. See [`crate::wal`] for the record contract.
    pub fn set_wal(&mut self, sink: Option<Arc<dyn WalSink>>) {
        self.wal = sink;
    }

    /// The attached WAL sink, if any.
    pub fn wal(&self) -> Option<&Arc<dyn WalSink>> {
        self.wal.as_ref()
    }

    /// Delivers one record to the attached sink, if any.
    #[inline]
    fn emit(&self, op: WalOp<'_>) {
        if let Some(sink) = &self.wal {
            sink.record(op);
        }
    }

    /// The current global epoch: the commit counter, advanced by every
    /// write and index (re)build anywhere in the database.
    pub fn epoch(&self) -> u64 {
        self.commit
    }

    /// The epoch of one relation — its component of the vector clock: the
    /// commit number of the last mutation that touched `rel` (0 if never
    /// written). Unchanged ⇒ nothing a reader of `rel` saw can have moved.
    pub fn epoch_of(&self, rel: RelId) -> u64 {
        self.shards[rel.0].epoch
    }

    /// The shard of `rel`. Untouched shards stay pointer-equal
    /// (`Arc::ptr_eq`) across writes to other relations — the invariant the
    /// snapshot layer's cheap-write guarantee rests on.
    pub fn shard(&self, rel: RelId) -> &Arc<RelationShard> {
        &self.shards[rel.0]
    }

    /// Number of relations (= shards).
    pub fn num_relations(&self) -> usize {
        self.shards.len()
    }

    /// The catalog this database instantiates.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The symbol table the stored cells are encoded against.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// A shared handle to the symbol table — the read-only view parallel
    /// ingest workers pre-encode chunks against (the table is append-only
    /// copy-on-write, so a handle stays a valid prefix of later states).
    pub fn shared_symbols(&self) -> Arc<SymbolTable> {
        Arc::clone(&self.symbols)
    }

    /// Replay-side eager interning: folds one logged intern record into the
    /// database's own symbol table. Recovery applies these in logged (id)
    /// order **before** re-encoding the rows that referenced them, so the
    /// rebuilt cells reuse the original symbol ids no matter what encode
    /// order produced them — the bulk-ingest fast path interns
    /// column-at-a-time, while replay pushes whole rows.
    ///
    /// Recovery-only: calling this on a WAL-attached database would create
    /// an unlogged symbol.
    pub fn replay_intern_str(&mut self, text: &str) {
        debug_assert!(
            self.wal.is_none(),
            "replay-side interning on a WAL-attached database"
        );
        Arc::make_mut(&mut self.symbols).intern(text);
    }

    /// Replay-side eager interning of a wide integer; see
    /// [`Self::replay_intern_str`].
    pub fn replay_intern_wide(&mut self, value: i64) {
        debug_assert!(
            self.wal.is_none(),
            "replay-side interning on a WAL-attached database"
        );
        Arc::make_mut(&mut self.symbols).encode(&Value::Int(value));
    }

    /// The table for `rel`.
    pub fn table(&self, rel: RelId) -> &Table {
        &self.shards[rel.0].table
    }

    /// Table cells copied by shard copy-on-write over this instance's write
    /// history (diagnostics for the write-amplification bench; index
    /// postings are cloned too but not counted).
    pub fn cow_cells_cloned(&self) -> u64 {
        self.cow_cells
    }

    /// Number of shard clones forced by outstanding snapshots or database
    /// clones (diagnostics; in-place mutations don't count).
    pub fn cow_clones(&self) -> u64 {
        self.cow_clones
    }

    /// A deep copy that clones **every** shard's table and indices — the
    /// write cost the pre-sharding monolithic store paid on every
    /// copy-on-write. Kept as the baseline the write-amplification bench
    /// compares sharded writes against.
    pub fn clone_monolithic(&self) -> Database {
        let mut db = self.clone();
        db.symbols = Arc::new((*self.symbols).clone());
        for shard in &mut db.shards {
            let copy = (**shard).clone();
            db.cow_cells += copy.clone_cells();
            db.cow_clones += 1;
            *shard = Arc::new(copy);
        }
        db
    }

    /// Bumps the commit counter and returns the touched shard for mutation,
    /// stamping its epoch — the single funnel every write path goes
    /// through. Clones the shard iff an outstanding clone/snapshot still
    /// references it (counted in the cow diagnostics).
    fn shard_mut(&mut self, rel: RelId) -> &mut RelationShard {
        self.commit += 1;
        cow_shard(
            &mut self.shards[rel.0],
            self.commit,
            &mut self.cow_cells,
            &mut self.cow_clones,
        )
    }

    /// Encodes a row for storage, interning unseen values. The symbol table
    /// is copy-on-write too: a row whose values are all already interned —
    /// the steady state of a serving workload — never clones it, even with
    /// snapshots outstanding. Newly interned values are delivered to the
    /// WAL sink (before the op record that carries the encoded cells).
    fn encode_row_interning(&mut self, row: &[Value]) -> RowBuf {
        encode_interning_logged(&mut self.symbols, self.wal.as_deref(), row)
    }

    /// A value-level bulk loader for `rel`: encodes [`Value`] rows through
    /// this database's symbol table. Invalidates the relation's indices
    /// (bulk-load path): call [`Self::build_indexes`] when loading is done.
    pub fn loader(&mut self, rel: RelId) -> Loader<'_> {
        // The loader also borrows the symbol table, so the funnel is the
        // free `cow_shard` over field-disjoint borrows.
        self.commit += 1;
        let commit = self.commit;
        let shard = cow_shard(
            &mut self.shards[rel.0],
            commit,
            &mut self.cow_cells,
            &mut self.cow_clones,
        );
        shard.indexes.clear();
        let wal = self.wal.as_deref();
        if let Some(sink) = wal {
            sink.record(WalOp::BulkBegin { commit, rel });
        }
        Loader {
            table: &mut shard.table,
            symbols: &mut self.symbols,
            wal,
            rel,
        }
    }

    /// The chunked bulk-ingest fast path for `rel`: like [`Self::loader`]
    /// (one commit bump for the whole load, indices invalidated, WAL
    /// bracket `BulkBegin … BulkEnd`) but rows arrive **chunk-at-a-time**:
    /// each chunk is symbol-encoded in batch passes, appended column at a
    /// time, and logged as a single [`WalOp::BulkChunk`] record instead of
    /// one record per row. Call [`Self::build_indexes`] when loading is
    /// done. Loads the final state identically to pushing the same rows
    /// through [`Self::loader`] one at a time.
    pub fn bulk_loader(&mut self, rel: RelId) -> crate::bulk::BulkLoader<'_> {
        self.commit += 1;
        let commit = self.commit;
        let shard = cow_shard(
            &mut self.shards[rel.0],
            commit,
            &mut self.cow_cells,
            &mut self.cow_clones,
        );
        shard.indexes.clear();
        let wal = self.wal.as_deref();
        if let Some(sink) = wal {
            sink.record(WalOp::BulkBegin { commit, rel });
        }
        crate::bulk::BulkLoader::new(&mut shard.table, &mut self.symbols, wal, rel)
    }

    /// Decodes a row of cells from this database back to values.
    pub fn decode_row(&self, cells: &[Cell]) -> Vec<Value> {
        self.symbols.decode_row(cells)
    }

    /// Iterates over the rows of `rel`, decoded to values (convenience for
    /// tests and tooling; the hot paths stay on cells).
    pub fn value_rows(&self, rel: RelId) -> impl Iterator<Item = Vec<Value>> + '_ {
        self.shards[rel.0]
            .table
            .rows()
            .map(|r| self.symbols.decode_row(r))
    }

    /// Inserts one row into the relation called `rel_name`.
    ///
    /// Drops the relation's registered indices (bulk-load path): call
    /// [`Self::build_indexes`] when loading is done, or use
    /// [`Self::insert_maintained`] for live updates. Other relations'
    /// shards — tables, indices, epochs — are untouched.
    pub fn insert(&mut self, rel_name: &str, row: &[Value]) -> Result<()> {
        let rel = self.catalog.require_rel(rel_name)?;
        if row.len() != self.catalog.relation(rel).arity() {
            return Err(CoreError::Invalid(format!(
                "arity mismatch inserting into `{rel_name}`"
            )));
        }
        let cells = self.encode_row_interning(row);
        let shard = self.shard_mut(rel);
        shard.indexes.clear();
        shard.table.push(&cells);
        self.emit(WalOp::Insert {
            commit: self.commit,
            rel,
            cells: &cells,
        });
        Ok(())
    }

    /// Inserts one row and **maintains** every registered index of the
    /// relation in place (amortized O(columns) per index) — the live-update
    /// path used by incremental maintenance. Returns the new row's id.
    pub fn insert_maintained(&mut self, rel_name: &str, row: &[Value]) -> Result<u32> {
        let rel = self.catalog.require_rel(rel_name)?;
        if row.len() != self.catalog.relation(rel).arity() {
            return Err(CoreError::Invalid(format!(
                "arity mismatch inserting into `{rel_name}`"
            )));
        }
        let cells = self.encode_row_interning(row);
        let shard = self.shard_mut(rel);
        let rid = shard.table.len() as u32;
        shard.table.push(&cells);
        for (_, idx) in shard.indexes.iter_mut() {
            idx.insert_row(rid, &cells);
        }
        self.emit(WalOp::InsertMaintained {
            commit: self.commit,
            rel,
            cells: &cells,
        });
        Ok(rid)
    }

    /// Deletes **one copy** of `row` from the relation called `rel_name`
    /// (bag storage: duplicates are removed one at a time; see
    /// [`crate::table::Table`] for the semantics). Returns `false` — and
    /// leaves the database untouched, epochs included — if no copy is
    /// stored.
    ///
    /// Drops the relation's registered indices (bulk-unload path): call
    /// [`Self::build_indexes`] when done, or use
    /// [`Self::delete_maintained`] for live updates.
    pub fn delete(&mut self, rel_name: &str, row: &[Value]) -> Result<bool> {
        let (rel, cells) = match self.locate(rel_name, row)? {
            Some(hit) => hit,
            None => return Ok(false),
        };
        let rid = match self.shards[rel.0].table.find_row(&cells) {
            Some(rid) => rid,
            None => return Ok(false),
        };
        let shard = self.shard_mut(rel);
        shard.indexes.clear();
        shard.table.swap_remove(rid);
        self.emit(WalOp::Delete {
            commit: self.commit,
            rel,
            cells: &cells,
        });
        Ok(true)
    }

    /// Deletes one copy of `row` and **maintains** every registered index of
    /// the relation in place — the live-update path used by incremental
    /// maintenance, mirror of [`Self::insert_maintained`]. The row is
    /// located through a registered index when one exists (O(postings)),
    /// falling back to a table scan. Tombstone-free: the table's last row is
    /// swapped into the hole and its postings re-pointed. Returns `false` —
    /// with no epoch bump — if no copy is stored.
    pub fn delete_maintained(&mut self, rel_name: &str, row: &[Value]) -> Result<bool> {
        let (rel, cells) = match self.locate(rel_name, row)? {
            Some(hit) => hit,
            None => return Ok(false),
        };
        let rid = match self.locate_rid(rel, &cells) {
            Some(rid) => rid,
            None => return Ok(false),
        };
        let RelationShard { table, indexes, .. } = self.shard_mut(rel);
        for (_, idx) in indexes.iter_mut() {
            idx.remove_row(rid as u32, &cells, table);
        }
        if let Some(moved_from) = table.swap_remove(rid) {
            let moved: Vec<Cell> = table.row(rid).to_vec();
            for (_, idx) in indexes.iter_mut() {
                idx.reindex_row(moved_from as u32, rid as u32, &moved);
            }
        }
        self.emit(WalOp::DeleteMaintained {
            commit: self.commit,
            rel,
            cells: &cells,
        });
        Ok(true)
    }

    /// Prepares an [`Self::insert_maintained`] **off the commit lock**: all
    /// the expensive work — row encoding, the shard's copy-on-write clone,
    /// the table append and index maintenance — happens against `&self`
    /// (any snapshot of the relation's latest state), leaving only the
    /// pointer-swap [`Self::commit_prepared`] for the exclusive section.
    ///
    /// Returns `Ok(None)` when the row contains a not-yet-interned value:
    /// interning mutates the shared symbol table, so the caller must fall
    /// back to the in-place path under exclusion. The caller must hold the
    /// relation's write latch from before calling this until after
    /// `commit_prepared`, so no other writer can move the shard's epoch in
    /// between (`commit_prepared` panics if one did).
    pub fn prepare_insert_maintained(
        &self,
        rel_name: &str,
        row: &[Value],
    ) -> Result<Option<PreparedWrite>> {
        let rel = self.catalog.require_rel(rel_name)?;
        if row.len() != self.catalog.relation(rel).arity() {
            return Err(CoreError::Invalid(format!(
                "arity mismatch inserting into `{rel_name}`"
            )));
        }
        let Some(cells) = self.symbols.try_encode_row(row) else {
            return Ok(None);
        };
        let base = &self.shards[rel.0];
        let cloned_cells = base.clone_cells();
        let mut shard = (**base).clone();
        let rid = shard.table.len() as u32;
        shard.table.push(&cells);
        for (_, idx) in shard.indexes.iter_mut() {
            idx.insert_row(rid, &cells);
        }
        Ok(Some(PreparedWrite {
            rel,
            base_epoch: base.epoch,
            shard,
            cloned_cells,
            cells: cells.to_vec(),
            kind: PreparedKind::Insert,
            rid,
        }))
    }

    /// Prepares a [`Self::delete_maintained`] off the commit lock; the
    /// mirror of [`Self::prepare_insert_maintained`] (same latch contract).
    ///
    /// Returns `Ok(None)` when no copy of the row is stored — including
    /// rows with never-interned values, which cannot be stored — in which
    /// case the delete is a no-op (`false`) and nothing needs committing:
    /// unlike the insert side there is no interning fallback, because the
    /// caller's latch keeps the relation's contents stable until commit.
    pub fn prepare_delete_maintained(
        &self,
        rel_name: &str,
        row: &[Value],
    ) -> Result<Option<PreparedWrite>> {
        let (rel, cells) = match self.locate(rel_name, row)? {
            Some(hit) => hit,
            None => return Ok(None),
        };
        let rid = match self.locate_rid(rel, &cells) {
            Some(rid) => rid,
            None => return Ok(None),
        };
        let base = &self.shards[rel.0];
        let cloned_cells = base.clone_cells();
        let mut shard = (**base).clone();
        let RelationShard { table, indexes, .. } = &mut shard;
        for (_, idx) in indexes.iter_mut() {
            idx.remove_row(rid as u32, &cells, table);
        }
        if let Some(moved_from) = table.swap_remove(rid) {
            let moved: Vec<Cell> = table.row(rid).to_vec();
            for (_, idx) in indexes.iter_mut() {
                idx.reindex_row(moved_from as u32, rid as u32, &moved);
            }
        }
        Ok(Some(PreparedWrite {
            rel,
            base_epoch: base.epoch,
            shard,
            cloned_cells,
            cells,
            kind: PreparedKind::Delete,
            rid: rid as u32,
        }))
    }

    /// Installs a prepared write: the short exclusive **commit section** of
    /// the concurrent write protocol. Bumps the commit counter, stamps the
    /// prepared shard's epoch, swaps it in (one pointer store — untouched
    /// relations' shards stay `Arc::ptr_eq`), emits the WAL op, and returns
    /// the prepared row id. The clone the preparation paid is counted in
    /// the cow diagnostics, exactly as the in-place path counts clones
    /// forced by outstanding snapshots.
    ///
    /// Panics if the relation's epoch moved since preparation — that means
    /// two writers raced on one relation, i.e. the caller broke the
    /// per-relation latch contract.
    pub fn commit_prepared(&mut self, prepared: PreparedWrite) -> u32 {
        let PreparedWrite {
            rel,
            base_epoch,
            mut shard,
            cloned_cells,
            cells,
            kind,
            rid,
        } = prepared;
        assert_eq!(
            self.shards[rel.0].epoch, base_epoch,
            "prepared write raced another writer on relation {}",
            rel.0
        );
        self.commit += 1;
        self.cow_cells += cloned_cells;
        self.cow_clones += 1;
        shard.epoch = self.commit;
        self.shards[rel.0] = Arc::new(shard);
        match kind {
            PreparedKind::Insert => self.emit(WalOp::InsertMaintained {
                commit: self.commit,
                rel,
                cells: &cells,
            }),
            PreparedKind::Delete => self.emit(WalOp::DeleteMaintained {
                commit: self.commit,
                rel,
                cells: &cells,
            }),
        }
        rid
    }

    /// `true` if at least one copy of `row` is stored in `rel` — the
    /// value-level presence test incremental maintenance uses to decide
    /// whether a deletion removed the *last* copy. Served by a registered
    /// index when one exists, else a scan.
    pub fn contains_row(&self, rel: RelId, row: &[Value]) -> Result<bool> {
        if row.len() != self.catalog.relation(rel).arity() {
            return Err(CoreError::Invalid("arity mismatch in contains_row".into()));
        }
        let Some(cells) = self.symbols.try_encode_row(row) else {
            return Ok(false); // a never-interned value was never stored
        };
        Ok(self.locate_rid(rel, &cells).is_some())
    }

    /// Shared head of the delete paths: resolves the relation, checks the
    /// arity, and encodes the row read-only (a never-interned value proves
    /// no copy is stored).
    fn locate(&self, rel_name: &str, row: &[Value]) -> Result<Option<(RelId, Vec<Cell>)>> {
        let rel = self.catalog.require_rel(rel_name)?;
        if row.len() != self.catalog.relation(rel).arity() {
            return Err(CoreError::Invalid(format!(
                "arity mismatch deleting from `{rel_name}`"
            )));
        }
        match self.symbols.try_encode_row(row) {
            Some(cells) => Ok(Some((rel, cells.to_vec()))),
            None => Ok(None),
        }
    }

    /// The row id of one stored copy of `cells`: probes the posting list of
    /// a registered index on the relation when one exists (any index works —
    /// its key is a projection of the row being looked up), else scans.
    fn locate_rid(&self, rel: RelId, cells: &[Cell]) -> Option<usize> {
        let shard = &self.shards[rel.0];
        if let Some((_, idx)) = shard.indexes.first() {
            let key: RowBuf = idx.x().iter().map(|&c| cells[c]).collect();
            return idx
                .all(&key)
                .iter()
                .copied()
                .map(|rid| rid as usize)
                .find(|&rid| shard.table.row(rid) == cells);
        }
        shard.table.find_row(cells)
    }

    /// Total number of tuples across all tables — the paper's `|D|`.
    pub fn total_tuples(&self) -> usize {
        self.shards.iter().map(|s| s.table.len()).sum()
    }

    /// Builds (or reuses) the index for one access constraint.
    pub fn ensure_index(&mut self, c: &AccessConstraint) {
        self.ensure_index_cols(c.relation(), c.x(), c.y());
    }

    /// Builds (or reuses) the index on key columns `x` exposing value
    /// columns `y` of `rel` — the column-level form [`Self::ensure_index`]
    /// delegates to, also used by log replay to rebuild indices from
    /// [`WalOp::EnsureIndex`] records.
    pub fn ensure_index_cols(&mut self, rel: RelId, x: &[usize], y: &[usize]) {
        if self.shards[rel.0].index(x, y).is_some() {
            return;
        }
        let shard = self.shard_mut(rel);
        let idx = HashIndex::build(&shard.table, x, y);
        shard.indexes.push(((x.to_vec(), y.to_vec()), idx));
        self.emit(WalOp::EnsureIndex {
            commit: self.commit,
            rel,
            x,
            y,
        });
    }

    /// Builds every index declared by `a` (the paper's setup step: "for each
    /// X → (Y, N) extracted, we built an index").
    pub fn build_indexes(&mut self, a: &AccessSchema) {
        for c in a.constraints() {
            self.ensure_index(c);
        }
    }

    /// The index backing constraint `c`, if built.
    pub fn index_for(&self, c: &AccessConstraint) -> Option<&HashIndex> {
        self.shards[c.relation().0].index(c.x(), c.y())
    }

    /// Number of registered indices across all shards.
    pub fn num_indexes(&self) -> usize {
        self.shards.iter().map(|s| s.indexes.len()).sum()
    }

    /// Approximate resident size in tuples-of-values (tables only), for
    /// reporting dataset scale.
    pub fn total_values(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.table.len() * s.table.arity())
            .sum()
    }
}

/// A maintained single-row write prepared against a snapshot of one
/// relation's latest state, ready for its short exclusive commit; see
/// [`Database::prepare_insert_maintained`] / [`Database::commit_prepared`].
#[derive(Debug)]
pub struct PreparedWrite {
    rel: RelId,
    /// Epoch of the shard the clone was taken from; `commit_prepared`
    /// checks it to catch latch-contract violations.
    base_epoch: u64,
    shard: RelationShard,
    cloned_cells: u64,
    cells: Vec<Cell>,
    kind: PreparedKind,
    rid: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PreparedKind {
    Insert,
    Delete,
}

impl PreparedWrite {
    /// The relation this write touches.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The row id the commit will report: the appended row's id for an
    /// insert, the removed copy's (pre-swap) id for a delete.
    pub fn rid(&self) -> u32 {
        self.rid
    }
}

/// The copy-on-write funnel shared by [`Database::shard_mut`] and
/// [`Database::loader`]: clones the shard iff something else still
/// references it (feeding the cow diagnostics the write-amplification
/// bench reads) and stamps it with the new commit number. A free function
/// over disjoint fields so the loader can borrow the symbol table
/// alongside.
fn cow_shard<'a>(
    arc: &'a mut Arc<RelationShard>,
    commit: u64,
    cow_cells: &mut u64,
    cow_clones: &mut u64,
) -> &'a mut RelationShard {
    if Arc::strong_count(arc) > 1 {
        *cow_cells += arc.clone_cells();
        *cow_clones += 1;
    }
    let shard = Arc::make_mut(arc);
    shard.epoch = commit;
    shard
}

/// Copy-on-write encoding against the shared symbol table: rows whose
/// values are all already interned never clone it.
fn encode_interning(symbols: &mut Arc<SymbolTable>, row: &[Value]) -> RowBuf {
    match symbols.try_encode_row(row) {
        Some(cells) => cells,
        None => Arc::make_mut(symbols).encode_row(row),
    }
}

/// [`encode_interning`] with WAL emission: any entries the encode added to
/// the symbol table are delivered as intern records, in id order, before
/// the caller emits the op record that carries the encoded cells. The
/// steady state (everything already interned) is one `try_encode_row` and
/// no records.
fn encode_interning_logged(
    symbols: &mut Arc<SymbolTable>,
    wal: Option<&dyn WalSink>,
    row: &[Value],
) -> RowBuf {
    let Some(sink) = wal else {
        return encode_interning(symbols, row);
    };
    let (strings_before, wides_before) = (symbols.len(), symbols.num_wide_ints());
    let cells = encode_interning(symbols, row);
    log_new_interns(symbols, sink, strings_before, wides_before);
    cells
}

/// Emits intern records for every symbol added past the given watermarks,
/// in id order — shared by the per-row and bulk-chunk encode paths so the
/// "interns precede the op that references them" contract holds on both.
pub(crate) fn log_new_interns(
    symbols: &SymbolTable,
    sink: &dyn WalSink,
    strings_before: usize,
    wides_before: usize,
) {
    for id in strings_before..symbols.len() {
        sink.record(WalOp::InternStr {
            id: id as u32,
            text: symbols.resolve(Sym(id as u32)),
        });
    }
    for id in wides_before..symbols.num_wide_ints() {
        sink.record(WalOp::InternWide {
            id: id as u32,
            value: symbols.wide_ints()[id],
        });
    }
}

/// One relation's durably stored state, as consumed by
/// [`Database::restore`]: the shard's vector-clock component, its rows
/// (flattened cells, arity taken from the catalog), and the `(x, y)`
/// column sets of the indices to rebuild over them.
#[derive(Debug, Clone, Default)]
pub struct ShardState {
    /// The shard's epoch at snapshot time.
    pub epoch: u64,
    /// Row cells, flattened in row-major order.
    pub cells: Vec<Cell>,
    /// `(key columns, value columns)` of each registered index.
    pub indexes: Vec<(Vec<usize>, Vec<usize>)>,
}

/// Value-level bulk loader returned by [`Database::loader`]: pairs a
/// mutable table with the database's symbol table so callers keep pushing
/// plain [`Value`] rows.
pub struct Loader<'a> {
    table: &'a mut Table,
    symbols: &'a mut Arc<SymbolTable>,
    wal: Option<&'a dyn WalSink>,
    rel: RelId,
}

impl Loader<'_> {
    /// Appends a row (must match the relation's arity). Values already
    /// interned never touch the shared symbol table.
    pub fn push(&mut self, row: &[Value]) {
        let cells = encode_interning_logged(self.symbols, self.wal, row);
        self.table.push(&cells);
        if let Some(sink) = self.wal {
            sink.record(WalOp::BulkRow {
                rel: self.rel,
                cells: &cells,
            });
        }
    }

    /// Reserves space for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.table.reserve_rows(additional);
    }

    /// Number of rows currently in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl Drop for Loader<'_> {
    fn drop(&mut self) {
        // Close the WAL bracket: recovery discards a bulk load whose end
        // record never made it to the log (torn mid-load).
        if let Some(sink) = self.wal {
            sink.record(WalOp::BulkEnd { rel: self.rel });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn photos() -> Arc<Catalog> {
        Catalog::from_names(&[
            ("in_album", &["photo_id", "album_id"]),
            ("friends", &["user_id", "friend_id"]),
            ("tagging", &["photo_id", "tagger_id", "taggee_id"]),
        ])
        .unwrap()
    }

    #[test]
    fn epoch_advances_on_every_mutation() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        a.add("friends", &["user_id"], &["friend_id"], 10).unwrap();
        let mut db = Database::new(cat);
        assert_eq!(db.epoch(), 0);

        db.insert("friends", &[Value::int(1), Value::int(2)])
            .unwrap();
        let e1 = db.epoch();
        assert!(e1 > 0);

        db.build_indexes(&a);
        let e2 = db.epoch();
        assert!(e2 > e1, "index build advances the epoch");
        // Re-ensuring an existing index is a no-op: epoch stays put.
        db.build_indexes(&a);
        assert_eq!(db.epoch(), e2);

        db.insert_maintained("friends", &[Value::int(1), Value::int(3)])
            .unwrap();
        let e3 = db.epoch();
        assert!(e3 > e2);

        {
            let mut l = db.loader(RelId(1));
            l.push(&[Value::int(4), Value::int(5)]);
        }
        assert!(db.epoch() > e3, "bulk load advances the epoch");
        // Reads never advance it.
        let frozen = db.epoch();
        let _ = db.total_tuples();
        let _ = db.value_rows(RelId(1)).count();
        assert_eq!(db.epoch(), frozen);
    }

    #[test]
    fn vector_clock_tracks_only_the_touched_relation() {
        let mut db = Database::new(photos());
        let (albums, friends) = (RelId(0), RelId(1));
        assert_eq!(db.epoch_of(albums), 0);
        assert_eq!(db.epoch_of(friends), 0);

        db.insert("friends", &[Value::int(1), Value::int(2)])
            .unwrap();
        let ef = db.epoch_of(friends);
        assert_eq!(ef, db.epoch(), "shard stamped with the commit number");
        assert_eq!(db.epoch_of(albums), 0, "other shards untouched");

        db.insert("in_album", &[Value::int(7), Value::int(8)])
            .unwrap();
        assert_eq!(db.epoch_of(friends), ef, "friends' component frozen");
        assert_eq!(db.epoch_of(albums), db.epoch());
        assert!(db.epoch() > ef, "global epoch is the commit counter");
    }

    #[test]
    fn writes_leave_untouched_shards_pointer_equal() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        a.add("friends", &["user_id"], &["friend_id"], 10).unwrap();
        let mut db = Database::new(cat);
        db.insert("friends", &[Value::int(1), Value::int(2)])
            .unwrap();
        db.insert("in_album", &[Value::int(7), Value::int(8)])
            .unwrap();
        db.build_indexes(&a);

        // A clone plays the role of an outstanding snapshot.
        let snap = db.clone();
        assert_eq!(db.cow_clones(), 0, "no shard cloned yet");
        db.insert_maintained("friends", &[Value::int(1), Value::int(3)])
            .unwrap();

        let (albums, friends, tagging) = (RelId(0), RelId(1), RelId(2));
        assert!(
            Arc::ptr_eq(snap.shard(albums), db.shard(albums)),
            "untouched shard shared, not copied"
        );
        assert!(Arc::ptr_eq(snap.shard(tagging), db.shard(tagging)));
        assert!(
            !Arc::ptr_eq(snap.shard(friends), db.shard(friends)),
            "touched shard copied on write"
        );
        // The snapshot is frozen; the writer sees the new row.
        assert_eq!(snap.table(friends).len(), 1);
        assert_eq!(db.table(friends).len(), 2);
        // Exactly one shard clone, costing only the touched table's cells.
        assert_eq!(db.cow_clones(), 1);
        assert_eq!(db.cow_cells_cloned(), 2, "one 2-cell row before the write");

        // With the snapshot dropped, further writes mutate in place.
        drop(snap);
        let before = db.cow_clones();
        db.insert_maintained("friends", &[Value::int(2), Value::int(4)])
            .unwrap();
        assert_eq!(db.cow_clones(), before, "no reference, no copy");
    }

    #[test]
    fn prepared_writes_match_in_place_maintained_writes() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        a.add("friends", &["user_id"], &["friend_id"], 10).unwrap();

        // Oracle: the classic in-place maintained path.
        let mut oracle = Database::new(cat.clone());
        oracle.build_indexes(&a);
        oracle
            .insert_maintained("friends", &[Value::int(1), Value::int(2)])
            .unwrap();
        oracle
            .insert_maintained("friends", &[Value::int(1), Value::int(3)])
            .unwrap();
        assert!(oracle
            .delete_maintained("friends", &[Value::int(1), Value::int(2)])
            .unwrap());

        // Same ops through prepare + commit.
        let mut db = Database::new(cat);
        db.build_indexes(&a);
        // First insert interns nothing new (ints are inline) so prepare
        // succeeds immediately.
        let p = db
            .prepare_insert_maintained("friends", &[Value::int(1), Value::int(2)])
            .unwrap()
            .unwrap();
        assert_eq!((p.rel(), p.rid()), (RelId(1), 0));
        assert_eq!(db.commit_prepared(p), 0);
        let p = db
            .prepare_insert_maintained("friends", &[Value::int(1), Value::int(3)])
            .unwrap()
            .unwrap();
        db.commit_prepared(p);
        let p = db
            .prepare_delete_maintained("friends", &[Value::int(1), Value::int(2)])
            .unwrap()
            .unwrap();
        db.commit_prepared(p);

        assert_eq!(db.epoch(), oracle.epoch());
        assert_eq!(db.epoch_of(RelId(1)), oracle.epoch_of(RelId(1)));
        let got: Vec<_> = db.value_rows(RelId(1)).collect();
        let want: Vec<_> = oracle.value_rows(RelId(1)).collect();
        assert_eq!(got, want);
        assert_eq!(db.num_indexes(), 1);

        // Absent rows and never-interned values prepare to None.
        assert!(db
            .prepare_delete_maintained("friends", &[Value::int(9), Value::int(9)])
            .unwrap()
            .is_none());
        assert!(db
            .prepare_delete_maintained("friends", &[Value::str("ghost"), Value::int(1)])
            .unwrap()
            .is_none());
        // Un-interned insert values defer to the in-place path.
        assert!(db
            .prepare_insert_maintained("friends", &[Value::str("new"), Value::int(1)])
            .unwrap()
            .is_none());
        // The prepared path counts its (unconditional) shard clones.
        assert_eq!(db.cow_clones(), 3);
    }

    #[test]
    fn prepared_writes_leave_untouched_shards_pointer_equal() {
        let mut db = Database::new(photos());
        db.insert_maintained("in_album", &[Value::int(7), Value::int(8)])
            .unwrap();
        let snap = db.clone();
        let p = db
            .prepare_insert_maintained("friends", &[Value::int(1), Value::int(2)])
            .unwrap()
            .unwrap();
        db.commit_prepared(p);
        assert!(Arc::ptr_eq(snap.shard(RelId(0)), db.shard(RelId(0))));
        assert!(Arc::ptr_eq(snap.shard(RelId(2)), db.shard(RelId(2))));
        assert!(!Arc::ptr_eq(snap.shard(RelId(1)), db.shard(RelId(1))));
        // The snapshot stays frozen at its vector clock.
        assert_eq!(snap.table(RelId(1)).len(), 0);
        assert_eq!(db.table(RelId(1)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "raced another writer")]
    fn commit_prepared_detects_latch_violations() {
        let mut db = Database::new(photos());
        let p = db
            .prepare_insert_maintained("friends", &[Value::int(1), Value::int(2)])
            .unwrap()
            .unwrap();
        // Another write to the same relation lands between prepare and
        // commit — exactly what the per-relation latch must prevent.
        db.insert_maintained("friends", &[Value::int(3), Value::int(4)])
            .unwrap();
        db.commit_prepared(p);
    }

    #[test]
    fn interned_values_do_not_clone_the_symbol_table() {
        let mut db = Database::new(photos());
        db.insert("friends", &[Value::str("u0"), Value::str("u1")])
            .unwrap();
        let snap = db.clone();
        // Re-inserting already-interned values must not copy the symbol
        // table even though the snapshot still references it.
        db.insert_maintained("friends", &[Value::str("u0"), Value::str("u1")])
            .unwrap();
        assert!(
            std::ptr::eq(snap.symbols(), db.symbols()),
            "steady-state write shares the symbol table"
        );
        // A brand-new string forces the copy-on-write.
        db.insert_maintained("friends", &[Value::str("u0"), Value::str("brand-new")])
            .unwrap();
        assert!(!std::ptr::eq(snap.symbols(), db.symbols()));
        assert_eq!(
            db.value_rows(RelId(1)).last().unwrap(),
            vec![Value::str("u0"), Value::str("brand-new")]
        );
    }

    #[test]
    fn clone_monolithic_copies_every_shard() {
        let mut db = Database::new(photos());
        db.insert("friends", &[Value::int(1), Value::int(2)])
            .unwrap();
        db.insert("in_album", &[Value::int(7), Value::int(8)])
            .unwrap();
        let copy = db.clone_monolithic();
        for rel in 0..db.num_relations() {
            assert!(!Arc::ptr_eq(db.shard(RelId(rel)), copy.shard(RelId(rel))));
        }
        assert_eq!(
            copy.cow_cells_cloned() - db.cow_cells_cloned(),
            4,
            "two 2-cell rows copied"
        );
        assert_eq!(copy.total_tuples(), db.total_tuples());
    }

    #[test]
    fn insert_and_count() {
        let mut db = Database::new(photos());
        db.insert("in_album", &[Value::str("p1"), Value::str("a0")])
            .unwrap();
        db.insert("friends", &[Value::str("u0"), Value::str("u1")])
            .unwrap();
        assert_eq!(db.total_tuples(), 2);
        assert_eq!(db.table(RelId(0)).len(), 1);
        assert_eq!(db.total_values(), 4);
        // Round-trip through the symbol table.
        assert_eq!(
            db.value_rows(RelId(0)).next().unwrap(),
            vec![Value::str("p1"), Value::str("a0")]
        );
    }

    #[test]
    fn loader_encodes_values() {
        let mut db = Database::new(photos());
        {
            let mut l = db.loader(RelId(1));
            l.reserve_rows(2);
            l.push(&[Value::str("u0"), Value::str("u1")]);
            l.push(&[Value::int(7), Value::Null]);
            assert_eq!(l.len(), 2);
            assert!(!l.is_empty());
        }
        let rows: Vec<Vec<Value>> = db.value_rows(RelId(1)).collect();
        assert_eq!(rows[0], vec![Value::str("u0"), Value::str("u1")]);
        assert_eq!(rows[1], vec![Value::int(7), Value::Null]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = Database::new(photos());
        assert!(db.insert("in_album", &[Value::str("p1")]).is_err());
        assert!(db.insert("ghost", &[Value::str("p1")]).is_err());
    }

    #[test]
    fn indexes_built_per_constraint_and_shared() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        a.add("in_album", &["album_id"], &["photo_id"], 1000)
            .unwrap();
        a.add("friends", &["user_id"], &["friend_id"], 5000)
            .unwrap();
        let mut db = Database::new(cat.clone());
        db.insert("in_album", &[Value::str("p1"), Value::str("a0")])
            .unwrap();
        db.build_indexes(&a);
        assert_eq!(db.num_indexes(), 2);

        // A prefix schema re-declares the same (X, Y): no new index.
        let prefix = a.prefix(1);
        db.build_indexes(&prefix);
        assert_eq!(db.num_indexes(), 2);

        let idx = db.index_for(a.constraint(bcq_core::access::ConstraintId(0)));
        assert!(idx.is_some());
        let key = db
            .symbols()
            .try_encode_row(&[Value::str("a0")])
            .expect("interned at insert");
        assert_eq!(idx.unwrap().witnesses(&key).len(), 1);
    }

    #[test]
    fn mutation_invalidates_only_the_relations_indexes() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        a.add("in_album", &["album_id"], &["photo_id"], 1000)
            .unwrap();
        a.add("friends", &["user_id"], &["friend_id"], 10).unwrap();
        let mut db = Database::new(cat);
        db.insert("friends", &[Value::int(1), Value::int(2)])
            .unwrap();
        db.build_indexes(&a);
        assert_eq!(db.num_indexes(), 2);
        db.insert("friends", &[Value::int(1), Value::int(3)])
            .unwrap();
        // The bulk path drops the touched relation's indices only:
        // relation-scoped invalidation.
        assert_eq!(db.num_indexes(), 1, "friends' index dropped");
        assert_eq!(db.shard(RelId(0)).num_indexes(), 1, "in_album's survives");
        assert_eq!(db.shard(RelId(1)).num_indexes(), 0);
    }

    #[test]
    fn maintained_insert_keeps_indexes_fresh() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        let cid = a.add("friends", &["user_id"], &["friend_id"], 10).unwrap();
        let mut db = Database::new(cat);
        db.insert("friends", &[Value::int(1), Value::int(2)])
            .unwrap();
        db.build_indexes(&a);

        let rid = db
            .insert_maintained("friends", &[Value::int(1), Value::int(3)])
            .unwrap();
        assert_eq!(rid, 1);
        assert_eq!(db.num_indexes(), 1, "index survived the insert");
        let key = db.symbols().try_encode_row(&[Value::int(1)]).unwrap();
        let idx = db.index_for(a.constraint(cid)).unwrap();
        assert_eq!(idx.witnesses(&key), &[0, 1]);

        // Maintained result matches a from-scratch rebuild.
        let rebuilt = crate::index::HashIndex::build(
            db.table(RelId(1)),
            a.constraint(cid).x(),
            a.constraint(cid).y(),
        );
        assert_eq!(idx.witnesses(&key), rebuilt.witnesses(&key));
        assert_eq!(idx.max_witnesses(), rebuilt.max_witnesses());

        // Duplicate Y values extend `all` but not the witnesses.
        db.insert_maintained("friends", &[Value::int(1), Value::int(3)])
            .unwrap();
        let idx = db.index_for(a.constraint(cid)).unwrap();
        assert_eq!(idx.witnesses(&key).len(), 2);
        assert_eq!(idx.all(&key).len(), 3);
    }

    #[test]
    fn delete_bulk_drops_indexes_and_rows() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        a.add("friends", &["user_id"], &["friend_id"], 10).unwrap();
        let mut db = Database::new(cat);
        db.insert("friends", &[Value::int(1), Value::int(2)])
            .unwrap();
        db.insert("friends", &[Value::int(1), Value::int(3)])
            .unwrap();
        db.build_indexes(&a);
        let e = db.epoch();

        assert!(db
            .delete("friends", &[Value::int(1), Value::int(2)])
            .unwrap());
        assert!(db.epoch() > e, "delete bumps the epoch");
        assert_eq!(db.num_indexes(), 0, "bulk delete drops indices");
        assert_eq!(db.table(RelId(1)).len(), 1);

        // A row that is not stored (or never interned) deletes nothing and
        // leaves the epoch alone.
        let e = db.epoch();
        assert!(!db
            .delete("friends", &[Value::int(1), Value::int(2)])
            .unwrap());
        assert!(!db
            .delete("friends", &[Value::str("ghost"), Value::int(2)])
            .unwrap());
        assert_eq!(db.epoch(), e);
        assert!(db.delete("ghost", &[Value::int(1)]).is_err());
        assert!(db.delete("friends", &[Value::int(1)]).is_err());
    }

    #[test]
    fn maintained_delete_keeps_indexes_fresh() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        let cid = a.add("friends", &["user_id"], &["friend_id"], 10).unwrap();
        let mut db = Database::new(cat);
        for (u, f) in [(1, 2), (1, 3), (2, 4), (1, 2)] {
            db.insert("friends", &[Value::int(u), Value::int(f)])
                .unwrap();
        }
        db.build_indexes(&a);
        let e = db.epoch();

        // Deleting one copy of the duplicated (1, 2) keeps the value
        // present: witnesses still cover {2, 3}.
        assert!(db
            .delete_maintained("friends", &[Value::int(1), Value::int(2)])
            .unwrap());
        assert!(db.epoch() > e);
        assert_eq!(db.num_indexes(), 1, "index survived the delete");
        let key = db.symbols().try_encode_row(&[Value::int(1)]).unwrap();
        let idx = db.index_for(a.constraint(cid)).unwrap();
        assert_eq!(idx.witnesses(&key).len(), 2);
        assert_eq!(idx.all(&key).len(), 2);
        assert!(db
            .contains_row(RelId(1), &[Value::int(1), Value::int(2)])
            .unwrap());

        // Deleting the last copy retracts the Y-value from the witnesses.
        assert!(db
            .delete_maintained("friends", &[Value::int(1), Value::int(2)])
            .unwrap());
        let idx = db.index_for(a.constraint(cid)).unwrap();
        assert_eq!(idx.witnesses(&key).len(), 1);
        assert!(!db
            .contains_row(RelId(1), &[Value::int(1), Value::int(2)])
            .unwrap());

        // Maintained index is equivalent to a rebuild (as posting sets —
        // swap-remove permutes row ids).
        let rebuilt = crate::index::HashIndex::build(
            db.table(RelId(1)),
            a.constraint(cid).x(),
            a.constraint(cid).y(),
        );
        assert_eq!(idx.max_witnesses(), rebuilt.max_witnesses());
        assert_eq!(idx.num_keys(), rebuilt.num_keys());
        for probe in [1i64, 2] {
            let key = db.symbols().try_encode_row(&[Value::int(probe)]).unwrap();
            let mut a1: Vec<u32> = idx.all(&key).to_vec();
            let mut a2: Vec<u32> = rebuilt.all(&key).to_vec();
            a1.sort_unstable();
            a2.sort_unstable();
            assert_eq!(a1, a2, "postings agree for key {probe}");
            assert_eq!(
                idx.witnesses(&key).len(),
                rebuilt.witnesses(&key).len(),
                "witness counts agree for key {probe}"
            );
        }

        // A miss deletes nothing and does not bump the epoch.
        let e = db.epoch();
        assert!(!db
            .delete_maintained("friends", &[Value::int(9), Value::int(9)])
            .unwrap());
        assert_eq!(db.epoch(), e);
    }

    #[test]
    fn maintained_delete_repoints_moved_row_postings() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        let cid = a.add("friends", &["user_id"], &["friend_id"], 10).unwrap();
        let mut db = Database::new(cat);
        for (u, f) in [(1, 2), (2, 4), (3, 6)] {
            db.insert("friends", &[Value::int(u), Value::int(f)])
                .unwrap();
        }
        db.build_indexes(&a);
        // Deleting row 0 swaps row 2 (user 3) into slot 0; its postings
        // must point at the new id.
        assert!(db
            .delete_maintained("friends", &[Value::int(1), Value::int(2)])
            .unwrap());
        let key = db.symbols().try_encode_row(&[Value::int(3)]).unwrap();
        let idx = db.index_for(a.constraint(cid)).unwrap();
        assert_eq!(idx.witnesses(&key), &[0], "moved row re-pointed");
        assert_eq!(
            db.value_rows(RelId(1)).next().unwrap(),
            vec![Value::int(3), Value::int(6)]
        );
    }

    /// A recording sink: captures each record's kind, commit stamp, and a
    /// value-free shape summary, so tests can assert emission order.
    #[derive(Debug, Default)]
    struct Recorder(std::sync::Mutex<Vec<(String, Option<u64>)>>);

    impl crate::wal::WalSink for Recorder {
        fn record(&self, op: crate::wal::WalOp<'_>) {
            use crate::wal::WalOp as W;
            let kind = match op {
                W::InternStr { text, .. } => format!("intern:{text}"),
                W::InternWide { value, .. } => format!("wide:{value}"),
                W::Insert { rel, .. } => format!("insert:{}", rel.0),
                W::InsertMaintained { rel, .. } => format!("insert_m:{}", rel.0),
                W::Delete { rel, .. } => format!("delete:{}", rel.0),
                W::DeleteMaintained { rel, .. } => format!("delete_m:{}", rel.0),
                W::BulkBegin { rel, .. } => format!("bulk:{}", rel.0),
                W::BulkRow { rel, .. } => format!("row:{}", rel.0),
                W::BulkChunk { rel, rows, .. } => format!("chunk:{}x{rows}", rel.0),
                W::BulkEnd { rel } => format!("bulk_end:{}", rel.0),
                W::EnsureIndex { rel, .. } => format!("index:{}", rel.0),
            };
            self.0.lock().unwrap().push((kind, op.commit()));
        }
    }

    impl Recorder {
        fn take(&self) -> Vec<(String, Option<u64>)> {
            std::mem::take(&mut self.0.lock().unwrap())
        }
    }

    #[test]
    fn wal_records_are_one_per_commit_with_interns_first() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        a.add("friends", &["user_id"], &["friend_id"], 10).unwrap();
        let mut db = Database::new(cat);
        let rec = Arc::new(Recorder::default());
        db.set_wal(Some(rec.clone()));
        assert!(db.wal().is_some());

        // A fresh string row: interns precede the op record.
        db.insert("friends", &[Value::str("u0"), Value::str("u1")])
            .unwrap();
        assert_eq!(
            rec.take(),
            vec![
                ("intern:u0".into(), None),
                ("intern:u1".into(), None),
                ("insert:1".into(), Some(1)),
            ]
        );

        // Steady state: already-interned values emit only the op record,
        // stamped with the commit the shard epoch got.
        db.insert_maintained("friends", &[Value::str("u0"), Value::str("u1")])
            .unwrap();
        assert_eq!(rec.take(), vec![("insert_m:1".into(), Some(2))]);
        assert_eq!(db.epoch_of(RelId(1)), 2);

        // Index build logs once; re-ensuring is silent like the no-op it is.
        db.build_indexes(&a);
        assert_eq!(rec.take(), vec![("index:1".into(), Some(3))]);
        db.build_indexes(&a);
        assert!(rec.take().is_empty());

        // Effective deletes log; misses do not.
        assert!(db
            .delete_maintained("friends", &[Value::str("u0"), Value::str("u1")])
            .unwrap());
        assert_eq!(rec.take(), vec![("delete_m:1".into(), Some(4))]);
        assert!(!db
            .delete("friends", &[Value::str("ghost"), Value::str("u1")])
            .unwrap());
        assert!(rec.take().is_empty());

        // Bulk loads: one BulkBegin for the single commit bump, then a row
        // record per push, with a wide-int intern where needed.
        {
            let mut l = db.loader(RelId(0));
            l.push(&[Value::int(1), Value::int(i64::MAX)]);
            l.push(&[Value::int(2), Value::int(3)]);
        }
        assert_eq!(
            rec.take(),
            vec![
                ("bulk:0".into(), Some(5)),
                (format!("wide:{}", i64::MAX), None),
                ("row:0".into(), None),
                ("row:0".into(), None),
                ("bulk_end:0".into(), None),
            ]
        );
        assert_eq!(db.epoch(), 5);

        // Clones share the sink (snapshots are read-only; the writer
        // lineage keeps logging through its clone-swap).
        let mut clone = db.clone();
        clone
            .insert("friends", &[Value::str("u0"), Value::str("u1")])
            .unwrap();
        assert_eq!(rec.take(), vec![("insert:1".into(), Some(6))]);
    }

    #[test]
    fn restore_rebuilds_rows_epochs_and_indexes() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        let cid = a.add("friends", &["user_id"], &["friend_id"], 10).unwrap();
        let mut db = Database::new(cat.clone());
        for (u, f) in [(1, 2), (1, 3), (2, 4)] {
            db.insert("friends", &[Value::int(u), Value::int(f)])
                .unwrap();
        }
        db.insert("in_album", &[Value::str("p"), Value::str("al")])
            .unwrap();
        db.build_indexes(&a);

        // Dump by hand (the durability crate does this through its
        // snapshot codec) and restore.
        let states: Vec<ShardState> = (0..db.num_relations())
            .map(|i| {
                let shard = db.shard(RelId(i));
                ShardState {
                    epoch: shard.epoch(),
                    cells: shard.table().rows().flatten().copied().collect(),
                    indexes: if shard.num_indexes() > 0 {
                        vec![(vec![0], vec![1])]
                    } else {
                        vec![]
                    },
                }
            })
            .collect();
        let restored = Database::restore(cat, (*db.symbols()).clone(), states, db.epoch()).unwrap();

        assert_eq!(restored.epoch(), db.epoch());
        for i in 0..db.num_relations() {
            assert_eq!(restored.epoch_of(RelId(i)), db.epoch_of(RelId(i)));
            let (a_rows, b_rows): (Vec<_>, Vec<_>) = (
                db.value_rows(RelId(i)).collect(),
                restored.value_rows(RelId(i)).collect(),
            );
            assert_eq!(a_rows, b_rows, "relation {i} rows");
        }
        let key = restored.symbols().try_encode_row(&[Value::int(1)]).unwrap();
        let idx = restored.index_for(a.constraint(cid)).unwrap();
        assert_eq!(idx.witnesses(&key).len(), 2);
    }

    #[test]
    fn restore_rejects_malformed_parts() {
        let cat = photos();
        assert!(Database::restore(cat.clone(), SymbolTable::new(), vec![], 0).is_err());
        let mut states = vec![ShardState::default(); 3];
        states[0].cells = vec![Cell::NULL]; // in_album has arity 2
        assert!(Database::restore(cat.clone(), SymbolTable::new(), states, 0).is_err());
        let mut states = vec![ShardState::default(); 3];
        states[1].epoch = 5; // beyond the restored commit counter
        assert!(Database::restore(cat, SymbolTable::new(), states, 4).is_err());
    }

    #[test]
    fn maintained_insert_checks_arity() {
        let mut db = Database::new(photos());
        assert!(db.insert_maintained("friends", &[Value::int(1)]).is_err());
        assert!(db
            .insert_maintained("ghost", &[Value::int(1), Value::int(2)])
            .is_err());
    }

    #[test]
    fn maintained_insert_interns_new_strings() {
        let cat = photos();
        let mut a = AccessSchema::new(cat.clone());
        let cid = a.add("friends", &["user_id"], &["friend_id"], 10).unwrap();
        let mut db = Database::new(cat);
        db.build_indexes(&a);
        db.insert_maintained(
            "friends",
            &[Value::str("new-user"), Value::str("new-friend")],
        )
        .unwrap();
        let key = db
            .symbols()
            .try_encode_row(&[Value::str("new-user")])
            .expect("string interned by the maintained insert");
        assert_eq!(
            db.index_for(a.constraint(cid))
                .unwrap()
                .witnesses(&key)
                .len(),
            1
        );
    }
}
