#![warn(missing_docs)]
//! # bcq-exec — bounded and conventional query executors
//!
//! * [`eval_dq()`] executes the bounded plans of [`bcq_core::qplan`]: index
//!   witness fetches only, `|D_Q|` independent of `|D|`.
//! * [`baseline()`] is the conventional-DBMS competitor (the paper's MySQL):
//!   constant-key index access, full scans elsewhere, whole-tuple fetching,
//!   and a work budget reproducing the 2 500 s cap.
//! * [`eval_ra`] evaluates certified RA expressions boundedly on top of
//!   [`eval_dq()`].
//! * [`pipeline`] hosts the **single** physical-operator implementation
//!   (fetch / filter / hash-join / project over interned row batches, with
//!   unified metering) that all of the above share. Its hot path is the
//!   compiled-program interpreter ([`pipeline::run_program`]) over
//!   [`bcq_core::program::OpProgram`]s; the query-walking operators remain
//!   as the differential oracle
//!   ([`eval_dq::eval_dq_interpreted`] / [`baseline::baseline_interpreted`]).

pub mod baseline;
pub mod eval_dq;
pub mod incremental;
pub mod pipeline;
pub mod ra;
pub mod results;
pub mod views;

pub use baseline::{
    baseline, baseline_interpreted, BaselineMode, BaselineOptions, BaselineOutcome,
};
pub use eval_dq::{
    eval_dq, eval_dq_interpreted, eval_dq_partials, eval_dq_profiled, eval_dq_with,
    eval_dq_with_interpreted, ExecOutcome, PartialsOutcome,
};
pub use incremental::{DeltaStats, IncrementalAnswer};
pub use pipeline::{
    filter_program_batches, filter_program_columnar, project_program, run_join_partials,
    run_join_pipeline, run_program, run_program_columnar, run_program_columnar_partials,
    run_program_columnar_prefiltered, run_program_partials, run_program_prefiltered,
    semijoin_program, semijoin_program_columnar, Batch, BudgetExhausted, ExecContext, Fetch,
    FetchSource, FilterAtom, HashJoin, ParamEnv, Project, SemiJoin,
};
pub use ra::{eval_ra, eval_ra_prepared, PreparedRa, RaOutcome};
pub use results::ResultSet;
pub use views::materialize_views;
