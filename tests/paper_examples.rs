//! Integration tests pinning every worked example of the paper
//! (Examples 1–10) against the public API.

use bounded_cq::core::dominating::{find_dp, DominatingConfig};
use bounded_cq::core::mbounded::is_effectively_m_bounded;
use bounded_cq::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn photos_catalog() -> Arc<Catalog> {
    Catalog::from_names(&[
        ("in_album", &["photo_id", "album_id"]),
        ("friends", &["user_id", "friend_id"]),
        ("tagging", &["photo_id", "tagger_id", "taggee_id"]),
    ])
    .unwrap()
}

fn a0() -> AccessSchema {
    let mut a = AccessSchema::new(photos_catalog());
    a.add("in_album", &["album_id"], &["photo_id"], 1000)
        .unwrap();
    a.add("friends", &["user_id"], &["friend_id"], 5000)
        .unwrap();
    a.add("tagging", &["photo_id", "taggee_id"], &["tagger_id"], 1)
        .unwrap();
    a
}

fn q0() -> SpcQuery {
    SpcQuery::builder(photos_catalog(), "Q0")
        .atom("in_album", "ia")
        .atom("friends", "f")
        .atom("tagging", "t")
        .eq_const(("ia", "album_id"), "a0")
        .eq_const(("f", "user_id"), "u0")
        .eq(("ia", "photo_id"), ("t", "photo_id"))
        .eq(("t", "tagger_id"), ("f", "friend_id"))
        .eq_const(("t", "taggee_id"), "u0")
        .project(("ia", "photo_id"))
        .build()
        .unwrap()
}

fn q1() -> SpcQuery {
    SpcQuery::builder(photos_catalog(), "Q1")
        .atom("in_album", "ia")
        .atom("friends", "f")
        .atom("tagging", "t")
        .eq_param(("ia", "album_id"), "aid")
        .eq_param(("f", "user_id"), "uid")
        .eq(("ia", "photo_id"), ("t", "photo_id"))
        .eq(("t", "tagger_id"), ("f", "friend_id"))
        .eq(("t", "taggee_id"), ("f", "user_id"))
        .project(("ia", "photo_id"))
        .build()
        .unwrap()
}

/// Example 1(1) + Example 5/7: Q0 is effectively bounded under A0 and
/// answerable within 7000 tuples.
#[test]
fn example_1_q0_effectively_bounded_within_7000() {
    let q = q0();
    let a = a0();
    assert!(bcheck(&q, &a).bounded);
    assert!(ebcheck(&q, &a).effectively_bounded);
    let plan = qplan(&q, &a).unwrap();
    assert_eq!(plan.cost_bound(), 7000);
}

/// Example 1(2): Q1 is not bounded under A0, but instantiating (aid, uid)
/// recovers effective boundedness.
#[test]
fn example_1_q1_template() {
    let q = q1();
    let a = a0();
    assert!(!bcheck(&q, &a).bounded);
    assert!(!ebcheck(&q, &a).effectively_bounded);

    let mut bind = BTreeMap::new();
    bind.insert("aid".to_string(), Value::str("a0"));
    bind.insert("uid".to_string(), Value::str("u0"));
    let ground = q.instantiate(&bind);
    assert!(ebcheck(&ground, &a).effectively_bounded);
}

/// Example 1(3): Boolean SPC queries are bounded even with no access
/// schema at all.
#[test]
fn example_1_boolean_queries_always_bounded() {
    let cat = photos_catalog();
    let empty = AccessSchema::new(cat.clone());
    let q = SpcQuery::builder(cat, "anybool")
        .atom("tagging", "t1")
        .atom("friends", "f1")
        .eq(("t1", "tagger_id"), ("f1", "user_id"))
        .eq_const(("f1", "friend_id"), "x")
        .build()
        .unwrap();
    assert!(q.is_boolean());
    assert!(bcheck(&q, &empty).bounded);
    // But not *effectively* (no indices to find the witness).
    assert!(!ebcheck(&q, &empty).effectively_bounded);
}

/// Example 8: dropping the tagging constraint leaves no dominating
/// parameters at all.
#[test]
fn example_8_no_dominating_parameters() {
    let a1 = a0().filtered(|_, c| c.n() != 1); // drop (photo,taggee)->tagger
    assert_eq!(a1.len(), 2);
    assert!(!ebcheck(&q0(), &a1).effectively_bounded);
    assert!(find_dp(&q0(), &a1, DominatingConfig::default()).is_none());
    assert!(find_dp(&q1(), &a1, DominatingConfig::default()).is_none());
}

/// Example 9: findDPh returns X_P = {aid, uid, tid2} with α = 3/7.
#[test]
fn example_9_find_dp() {
    let q = q1();
    let set = find_dp(&q, &a0(), DominatingConfig::with_alpha(3.0 / 7.0)).unwrap();
    let names: Vec<String> = set.attrs.iter().map(|a| q.attr_name(*a)).collect();
    assert_eq!(names, vec!["ia.album_id", "f.user_id", "t.taggee_id"]);
}

/// Example 10 / Section 5.2: the plan realizes the 7000-tuple bound, and
/// the M-bounded decision flips exactly at 7000.
#[test]
fn example_10_m_boundedness() {
    let q = q0();
    let a = a0();
    assert_eq!(is_effectively_m_bounded(&q, &a, 7000, 20), Some(true));
    assert_eq!(is_effectively_m_bounded(&q, &a, 6999, 20), Some(false));
}

/// End-to-end Example 1: the plan run on a concrete database returns
/// exactly the photos where u0 is tagged by a friend, touching a bounded
/// set.
#[test]
fn example_1_end_to_end() {
    let catalog = photos_catalog();
    let a = a0();
    let q = q0();
    let mut db = Database::new(catalog);
    for (p, al) in [("p1", "a0"), ("p2", "a0"), ("p4", "a1")] {
        db.insert("in_album", &[Value::str(p), Value::str(al)])
            .unwrap();
    }
    for (u, f) in [("u0", "u1"), ("u0", "u2")] {
        db.insert("friends", &[Value::str(u), Value::str(f)])
            .unwrap();
    }
    for (p, tr, te) in [("p1", "u1", "u0"), ("p2", "u9", "u0"), ("p4", "u2", "u0")] {
        db.insert("tagging", &[Value::str(p), Value::str(tr), Value::str(te)])
            .unwrap();
    }
    db.build_indexes(&a);

    let plan = qplan(&q, &a).unwrap();
    let out = eval_dq(&db, &plan, &a).unwrap();
    assert_eq!(out.result.len(), 1);
    assert!(out.result.contains(&[Value::str("p1")]));
    assert!(u128::from(out.dq_tuples()) <= plan.cost_bound());

    // All baseline modes agree.
    for mode in [
        BaselineMode::FullScan,
        BaselineMode::ConstIndex,
        BaselineMode::IndexJoin,
    ] {
        let b = baseline(
            &db,
            &q,
            &a,
            BaselineOptions {
                mode,
                work_budget: None,
            },
        )
        .unwrap();
        assert_eq!(b.result().unwrap(), &out.result, "{mode:?}");
    }
}

/// Theorem 4's "access schema completeness not required" remark: the
/// workload reproduces the paper's 35/45 effectively bounded queries under
/// small access schemas.
#[test]
fn section_6_headline() {
    let mut eb = 0;
    let mut total = 0;
    for ds in all_datasets() {
        for wq in &ds.queries {
            total += 1;
            if ebcheck(&wq.query, &ds.access).effectively_bounded {
                eb += 1;
            }
        }
    }
    assert_eq!((eb, total), (35, 45));
}
