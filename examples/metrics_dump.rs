//! Observability end to end: drive a mixed read/write workload through a
//! [`Server`], then dump what the always-on metrics registry saw — the
//! per-lane latency histograms (p50/p99/p999), plan-cache movement,
//! admission verdicts, write-path, bulk-ingest and copy-on-write
//! amplification counters, and the write-concurrency series (per-relation
//! latch waits and conflicts, commit-section hold times, group-commit
//! batch sizes) — as both JSON and Prometheus text. Then the two opt-in
//! diagnostics: request tracing (phase timings for admit → cache-lookup →
//! compile → bind → execute → respond) and per-operator profiling of an
//! 8-atom chain query, whose step times must sum to within 10% of the
//! measured end-to-end execute time.
//!
//! Run with: `cargo run --release --example metrics_dump`

use bounded_cq::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The social-search server of the other examples, behind a budgeted
/// admission policy so unbounded scans land on the metered baseline
/// instead of being rejected.
fn social_server() -> core::result::Result<(Arc<Server>, Arc<Catalog>), Box<dyn std::error::Error>>
{
    let catalog = Catalog::from_names(&[
        ("in_album", &["photo_id", "album_id"]),
        ("friends", &["user_id", "friend_id"]),
        ("tagging", &["photo_id", "tagger_id", "taggee_id"]),
    ])?;
    let mut access = AccessSchema::new(catalog.clone());
    access.add("in_album", &["album_id"], &["photo_id"], 1000)?;
    access.add("friends", &["user_id"], &["friend_id"], 5000)?;
    access.add("tagging", &["photo_id", "taggee_id"], &["tagger_id"], 8)?;

    let users = 1_000i64;
    let mut db = Database::new(catalog.clone());
    for u in 0..users {
        for k in 0..8 {
            let f = (u * 31 + k * 7 + 1) % users;
            db.insert(
                "friends",
                &[Value::str(format!("u{u}")), Value::str(format!("u{f}"))],
            )?;
        }
    }
    for p in 0..users {
        db.insert(
            "in_album",
            &[
                Value::str(format!("p{p}")),
                Value::str(format!("a{}", p % 50)),
            ],
        )?;
        db.insert(
            "tagging",
            &[
                Value::str(format!("p{p}")),
                Value::str(format!("u{}", (p * 31 + 1) % users)),
                Value::str(format!("u{}", p % users)),
            ],
        )?;
    }
    let config = ServerConfig {
        policy: AdmissionPolicy::Budgeted(1_000_000),
        ..ServerConfig::default()
    };
    Ok((Arc::new(Server::new(db, access, config)), catalog))
}

/// An 8-atom chain: hops `h1 → h2 → … → h8` through `hop(src, dst)`,
/// anchored on a parameterized start node. Effectively bounded — each
/// hop's `src` is determined by the previous hop's `dst`, so the plan
/// fetches at most `3^k` witnesses per level.
fn chain_server() -> core::result::Result<(Arc<Server>, SpcQuery), Box<dyn std::error::Error>> {
    let catalog = Catalog::from_names(&[("hop", &["src", "dst"])])?;
    let mut access = AccessSchema::new(catalog.clone());
    access.add("hop", &["src"], &["dst"], 3)?;

    let nodes = 2_000i64;
    let mut db = Database::new(catalog.clone());
    for n in 0..nodes {
        for k in 0..3 {
            let d = (n * 3 + k * 7 + 1) % nodes;
            db.insert(
                "hop",
                &[Value::str(format!("n{n}")), Value::str(format!("n{d}"))],
            )?;
        }
    }

    let names: Vec<String> = (1..=8).map(|i| format!("h{i}")).collect();
    let mut b = SpcQuery::builder(catalog, "chain8");
    for name in &names {
        b = b.atom("hop", name);
    }
    b = b.eq_param(("h1", "src"), "start");
    for w in names.windows(2) {
        b = b.eq((w[0].as_str(), "dst"), (w[1].as_str(), "src"));
    }
    let q = b.project(("h8", "dst")).build()?;
    Ok((
        Arc::new(Server::new(db, access, ServerConfig::default())),
        q,
    ))
}

fn main() -> core::result::Result<(), Box<dyn std::error::Error>> {
    let (server, catalog) = social_server()?;

    // --- Mixed traffic: bounded template hits, budgeted scans, view
    // maintenance, maintained writes and deletes. ---
    let q1 = SpcQuery::builder(catalog.clone(), "Q1")
        .atom("in_album", "ia")
        .atom("friends", "f")
        .atom("tagging", "t")
        .eq_param(("ia", "album_id"), "aid")
        .eq_param(("f", "user_id"), "uid")
        .eq(("ia", "photo_id"), ("t", "photo_id"))
        .eq(("t", "tagger_id"), ("f", "friend_id"))
        .eq_param(("t", "taggee_id"), "uid")
        .project(("ia", "photo_id"))
        .build()?;
    let scan = SpcQuery::builder(catalog.clone(), "all_taggers")
        .atom("tagging", "t")
        .project(("t", "tagger_id"))
        .build()?;
    let friends_view = SpcQuery::builder(catalog, "friends_of_u0")
        .atom("friends", "f")
        .eq_const(("f", "user_id"), "u0")
        .project(("f", "friend_id"))
        .build()?;
    server.register_view(&friends_view)?;

    let mut session = server.session();
    for i in 0..2_000i64 {
        let mut bind = BTreeMap::new();
        bind.insert("aid".to_string(), Value::str(format!("a{}", i % 50)));
        bind.insert("uid".to_string(), Value::str(format!("u{}", i % 1_000)));
        session.query(&q1, &bind)?;
    }
    for _ in 0..3 {
        session.query(&scan, &BTreeMap::new())?;
    }
    // Writes racing a held snapshot: the store must copy-on-write the
    // touched shard, which is what the cow_* counters then expose.
    let pinned = server.snapshot();
    for k in 0..16 {
        server.insert("friends", &[Value::str("u0"), Value::str(format!("w{k}"))])?;
    }
    for k in 0..4 {
        server.delete("friends", &[Value::str("u0"), Value::str(format!("w{k}"))])?;
    }
    drop(pinned);
    server.bulk_update(|db| {
        db.insert("friends", &[Value::str("u0"), Value::str("bulk")])
            .unwrap();
    });
    // The chunked bulk-load fast path: one columnar chunk straight into
    // the store, which the ingest_* counters then expose.
    let (_, ingest) = server.bulk_load("in_album", |loader| {
        let n = 256usize;
        loader.reserve_rows(n);
        let photos: Vec<Value> = (0..n).map(|p| Value::str(format!("bp{p}"))).collect();
        let albums: Vec<Value> = (0..n).map(|p| Value::str(format!("a{}", p % 50))).collect();
        loader.push_chunk_columns(&[photos, albums]);
    })?;
    assert_eq!(ingest.rows, 256);
    server.view_result(ViewId(0))?;

    // --- Request tracing: opt-in, per-server; phases show up only for
    // the traced requests. ---
    server.set_tracing(true);
    let mut bind = BTreeMap::new();
    bind.insert("aid".to_string(), Value::str("a1"));
    bind.insert("uid".to_string(), Value::str("u1"));
    session.query(&q1, &bind)?;
    server.set_tracing(false);

    // --- The dump. ---
    let snap = server.metrics_snapshot();
    println!("=== JSON ===\n{}\n", snap.to_json());
    println!("=== Prometheus ===\n{}", snap.to_prometheus());

    assert_eq!(snap.lane(LaneKind::Bounded).latency.count(), 2_001);
    assert_eq!(snap.lane(LaneKind::Budgeted).latency.count(), 3);
    assert!(snap.lane(LaneKind::Bounded).latency.quantile(0.999) > 0);
    assert_eq!(snap.admission.budget_completed, 3);
    assert_eq!(snap.cache.misses, 2, "Q1 + scan compiled once each");
    assert!(snap.cache.hits >= 2_000);
    assert_eq!(snap.writes.inserts, 16);
    assert_eq!(snap.writes.deletes, 4);
    assert_eq!(snap.writes.bulk_updates, 2, "bulk_update + bulk_load");
    assert_eq!(snap.ingest.rows, 256);
    assert_eq!(snap.ingest.chunks, 1);
    assert!(snap.ingest.bytes > 0, "cell payload bytes were accounted");
    assert!(
        snap.writes.view_deltas >= 16,
        "view saw every maintained write"
    );
    assert!(
        snap.writes.view_recomputes >= 1,
        "bulk update forced a recompute"
    );
    assert!(
        snap.writes.cow_shard_clones > 0,
        "writes raced the pinned snapshot"
    );
    assert!(snap.writes.cow_cells_cloned > 0);
    println!(
        "write amplification: {} cells cloned across {} shard clones for {} writes\n",
        snap.writes.cow_cells_cloned,
        snap.writes.cow_shard_clones,
        snap.writes.inserts + snap.writes.deletes,
    );
    // Every maintained write passes through the exclusive commit section,
    // and its hold time is measured (latch waits show up only when two
    // writers actually collide on a relation, so that series may be empty
    // on a quiet run — but the conflict counter is always exported).
    assert_eq!(
        snap.writes.commit_hold.count(),
        snap.writes.inserts + snap.writes.deletes,
        "one commit-section hold per committed write"
    );
    println!(
        "commit hold p99: {} ns over {} commits ({} latch conflicts, wait p99 {} ns)",
        snap.writes.commit_hold.quantile(0.99),
        snap.writes.commit_hold.count(),
        snap.writes.conflicts,
        snap.writes.lock_wait.quantile(0.99),
    );

    // --- Group commit: a durable server acknowledges concurrent writers
    // with shared fsyncs; the batch-size series shows the collapse. ---
    let durable_catalog = Catalog::from_names(&[("left", &["k", "v"]), ("right", &["k", "v"])])?;
    let mut durable_access = AccessSchema::new(durable_catalog.clone());
    durable_access.add("left", &["k"], &["v"], 64)?;
    durable_access.add("right", &["k"], &["v"], 64)?;
    let (durable, _report, _views) = Server::open(
        Arc::new(MemLog::new()),
        durable_access,
        ServerConfig::default(),
        DurabilityConfig {
            policy: SyncPolicy::Always,
            keep_snapshots: 2,
        },
        &[],
    )?;
    let durable = Arc::new(durable);
    std::thread::scope(|scope| {
        for (t, rel) in ["left", "right"].into_iter().enumerate() {
            let durable = Arc::clone(&durable);
            scope.spawn(move || {
                for i in 0..32i64 {
                    durable
                        .insert(rel, &[Value::int(t as i64 * 1000 + i), Value::int(i)])
                        .unwrap();
                }
            });
        }
    });
    let dsnap = durable.metrics_snapshot();
    assert_eq!(dsnap.writes.inserts, 64);
    assert!(dsnap.wal.group_batches >= 1, "deferred fsyncs were batched");
    assert_eq!(
        dsnap.wal.group_records, 64,
        "every acknowledged write was covered by a group flush"
    );
    assert_eq!(
        dsnap.wal.group_batch_sizes.count(),
        dsnap.wal.group_batches,
        "one batch-size observation per group flush"
    );
    assert!(
        dsnap.wal.fsyncs <= dsnap.wal.records,
        "group commit never fsyncs more than once per record"
    );
    println!(
        "group commit: {} commits over {} batches (max batch {}), {} fsyncs for {} records\n",
        dsnap.wal.group_records,
        dsnap.wal.group_batches,
        dsnap.wal.group_batch_sizes.max(),
        dsnap.wal.fsyncs,
        dsnap.wal.records,
    );

    // --- Per-operator profiling: the 8-atom chain. ---
    let (chain, q) = chain_server()?;
    let prepared = chain.prepare(&q)?;
    let mut bind = BTreeMap::new();
    bind.insert("start".to_string(), Value::str("n0"));
    let (resp, profile) = chain.execute_profiled(&prepared.query, &bind)?;
    println!(
        "=== chain8 profile ({} answers, |DQ|={}) ===\n{}",
        resp.rows().map_or(0, |r| r.len()),
        resp.stats.meter.tuples_fetched,
        profile.render()
    );
    let sum = profile.step_sum_ns();
    assert!(sum <= profile.total_ns, "steps nest inside the execution");
    assert!(
        sum * 10 >= profile.total_ns * 9,
        "operator steps must cover ≥ 90% of the measured execute time \
         (steps {sum} ns vs total {} ns)",
        profile.total_ns
    );
    println!(
        "step sum {} ns / total {} ns = {:.1}% attributed",
        sum,
        profile.total_ns,
        100.0 * sum as f64 / profile.total_ns as f64
    );
    assert_eq!(
        chain.explain_last().map(|p| p.steps.len()),
        Some(profile.steps.len())
    );

    Ok(())
}
