//! TFACC — the UK road-accident dataset of Section 6, rebuilt synthetically.
//!
//! The paper integrates the Road Safety Data (accidents 1979–2005) with the
//! NaPTAN public-transport nodes via a fuzzy location join, yielding
//! **19 tables, 113 attributes, 89.7 M tuples (21.4 GB)** and **84 access
//! constraints**, including `date → (aid, 610)` ("at most 610 accidents in a
//! single day") and `aid → (vid, 192)` ("at most 192 vehicles in a single
//! accident"). The raw data is not redistributable; this module generates a
//! schema-faithful instance: same table/attribute counts, the same two
//! headline constraints, and 82 further constraints enforced **by
//! construction** (deterministic balanced assignments — see
//! [`crate::gen::spread`]), so `D |= A` holds at every scale.
//!
//! Scale 1.0 ≈ 0.7 M tuples (laptop-sized stand-in for the 89.7 M original);
//! the Figure 5(a) sweep uses scales `2^-5 … 1` exactly like the paper.

use crate::gen::{row_rng, scaled, spread, spread2};
use crate::source::{self, rows, RowSource};
use crate::spec::{Dataset, WorkloadQuery};
use bcq_core::prelude::*;
use bcq_storage::Database;
use std::sync::Arc;

/// Fixed dimension sizes (UK-realistic, scale-independent).
const N_DATES_BASE: u64 = 366;
const N_DATES_MIN: u64 = 12;
const N_DISTRICTS: u64 = 416;
const N_REGIONS: u64 = 11;
const N_MAKES: u64 = 100;
const N_MODELS: u64 = 1000; // 10 per make
const N_ADMIN: u64 = 150;
const N_STATIONS: u64 = 500;

/// The 19-table, 113-attribute TFACC catalog.
pub fn catalog() -> Arc<Catalog> {
    Catalog::from_names(&[
        (
            "accident",
            &[
                "aid",
                "date",
                "time_slot",
                "district_id",
                "road_class",
                "severity",
                "weather",
                "light",
                "surface",
                "speed_limit",
                "junction",
                "casualties_n",
                "vehicles_n",
                "police_force",
                "urban_rural",
                "special_conditions",
            ],
        ),
        (
            "vehicle",
            &[
                "vid",
                "aid",
                "vtype",
                "make_id",
                "model_id",
                "age_band",
                "engine_cc",
                "manoeuvre",
                "skidding",
                "hit_object",
                "towing",
                "first_point",
                "driver_age_band",
                "driver_sex",
            ],
        ),
        (
            "casualty",
            &[
                "cid",
                "aid",
                "vid",
                "class",
                "sex",
                "age_band",
                "severity",
                "pedestrian_loc",
                "pedestrian_move",
                "car_passenger",
            ],
        ),
        (
            "accident_date",
            &["date", "day", "month", "year", "week", "dow"],
        ),
        (
            "road",
            &[
                "road_id",
                "road_class",
                "road_number",
                "district_id",
                "surface_type",
                "lighting",
            ],
        ),
        ("accident_road", &["aid", "road_id"]),
        (
            "district",
            &[
                "district_id",
                "name",
                "region_id",
                "area_type",
                "population_band",
            ],
        ),
        ("region", &["region_id", "name"]),
        ("make", &["make_id", "name", "country", "founded_band"]),
        ("model", &["model_id", "make_id", "name", "doors", "fuel"]),
        (
            "stop_point",
            &[
                "stop_id",
                "atco",
                "lat_band",
                "lon_band",
                "stop_type",
                "district_id",
                "status",
                "naptan_code",
                "easting_band",
                "northing_band",
            ],
        ),
        (
            "stop_area",
            &["area_id", "name", "admin_id", "area_type", "code"],
        ),
        ("area_stop", &["area_id", "stop_id"]),
        ("admin_area", &["admin_id", "name", "region_id", "code"]),
        (
            "locality",
            &[
                "loc_id",
                "name",
                "district_id",
                "parent_loc",
                "gazetteer_code",
            ],
        ),
        ("stop_locality", &["stop_id", "loc_id"]),
        ("accident_stop", &["aid", "stop_id", "dist_m"]),
        (
            "weather_station",
            &["ws_id", "district_id", "elevation", "opened_year", "status"],
        ),
        (
            "observation",
            &[
                "obs_id",
                "ws_id",
                "date",
                "rain_mm",
                "temp_band",
                "wind_band",
                "visibility",
            ],
        ),
    ])
    .expect("static schema is valid")
}

/// The 84 TFACC access constraints, in sweep order: the first 12 are the
/// core set for the `‖A‖ = 12` point of Figure 5(b); 13–20 are the tighter
/// composites the sweep adds; the rest complete the full schema.
pub fn access_schema() -> AccessSchema {
    let mut a = AccessSchema::new(catalog());
    let mut add = |rel: &str, x: &[&str], y: &[&str], n: u64| {
        a.add(rel, x, y, n).expect("static constraint is valid");
    };

    // --- Core 12 ------------------------------------------------------
    add("accident", &["date"], &["aid"], 610); // the paper's example
    add(
        "accident",
        &["aid"],
        &[
            "date",
            "time_slot",
            "district_id",
            "road_class",
            "severity",
            "weather",
            "light",
            "surface",
            "speed_limit",
            "junction",
            "casualties_n",
            "vehicles_n",
            "police_force",
            "urban_rural",
            "special_conditions",
        ],
        1,
    ); // key
    add("vehicle", &["aid"], &["vid"], 192); // the paper's example
    add(
        "vehicle",
        &["vid"],
        &[
            "aid",
            "vtype",
            "make_id",
            "model_id",
            "age_band",
            "engine_cc",
            "manoeuvre",
            "skidding",
            "hit_object",
            "towing",
            "first_point",
            "driver_age_band",
            "driver_sex",
        ],
        1,
    ); // key
    add("casualty", &["aid"], &["cid"], 90);
    add(
        "casualty",
        &["cid"],
        &[
            "aid",
            "vid",
            "class",
            "sex",
            "age_band",
            "severity",
            "pedestrian_loc",
            "pedestrian_move",
            "car_passenger",
        ],
        1,
    ); // key
    add(
        "accident_date",
        &["date"],
        &["day", "month", "year", "week", "dow"],
        1,
    ); // key
    add(
        "district",
        &["district_id"],
        &["name", "region_id", "area_type", "population_band"],
        1,
    ); // key
    add(
        "model",
        &["model_id"],
        &["make_id", "name", "doors", "fuel"],
        1,
    ); // key
    add("accident_stop", &["aid"], &["stop_id", "dist_m"], 1); // fuzzy-join FD
    add(
        "stop_point",
        &["stop_id"],
        &[
            "atco",
            "lat_band",
            "lon_band",
            "stop_type",
            "district_id",
            "status",
            "naptan_code",
            "easting_band",
            "northing_band",
        ],
        1,
    ); // key
    add("observation", &["ws_id"], &["obs_id"], 256);

    // --- Upgrades 13–20 (the ‖A‖ sweep additions) ----------------------
    add("accident", &["date", "district_id"], &["aid"], 40);
    add("vehicle", &["aid", "vtype"], &["vid"], 48);
    add("casualty", &["aid", "class"], &["cid"], 24);
    add("observation", &["ws_id", "date"], &["obs_id"], 4);
    add("accident", &["date", "severity"], &["aid"], 512);
    add("accident_stop", &["stop_id"], &["aid"], 64);
    add("model", &["make_id"], &["model_id"], 10);
    add(
        "make",
        &["make_id"],
        &["name", "country", "founded_band"],
        1,
    ); // key

    // --- Remaining keys / FDs ------------------------------------------
    add("region", &["region_id"], &["name"], 1);
    add(
        "road",
        &["road_id"],
        &[
            "road_class",
            "road_number",
            "district_id",
            "surface_type",
            "lighting",
        ],
        1,
    );
    add(
        "stop_area",
        &["area_id"],
        &["name", "admin_id", "area_type", "code"],
        1,
    );
    add(
        "admin_area",
        &["admin_id"],
        &["name", "region_id", "code"],
        1,
    );
    add(
        "locality",
        &["loc_id"],
        &["name", "district_id", "parent_loc", "gazetteer_code"],
        1,
    );
    add(
        "weather_station",
        &["ws_id"],
        &["district_id", "elevation", "opened_year", "status"],
        1,
    );
    add(
        "observation",
        &["obs_id"],
        &[
            "ws_id",
            "date",
            "rain_mm",
            "temp_band",
            "wind_band",
            "visibility",
        ],
        1,
    );
    add("accident_road", &["aid"], &["road_id"], 1); // one road per accident
    add("area_stop", &["stop_id"], &["area_id"], 1);
    add("stop_locality", &["stop_id"], &["loc_id"], 1);
    add("accident", &["district_id"], &["police_force"], 1); // FD
    add("vehicle", &["model_id"], &["make_id"], 1); // FD

    // --- Reverse fan-out bounds ----------------------------------------
    add("accident_road", &["road_id"], &["aid"], 64);
    add("district", &["region_id"], &["district_id"], 64);
    add("stop_area", &["admin_id"], &["area_id"], 64);
    add("locality", &["district_id"], &["loc_id"], 64);
    add("weather_station", &["district_id"], &["ws_id"], 8);
    add("stop_locality", &["loc_id"], &["stop_id"], 16);
    add("observation", &["date"], &["obs_id"], 1024);
    add("casualty", &["vid"], &["cid"], 8);
    add("stop_point", &["district_id"], &["stop_id"], 256);
    add("area_stop", &["area_id"], &["stop_id"], 40);

    // --- Bounded domains -------------------------------------------------
    let domains: &[(&str, &str, u64)] = &[
        ("accident", "severity", 3),
        ("accident", "weather", 9),
        ("accident", "light", 7),
        ("accident", "road_class", 6),
        ("accident", "time_slot", 24),
        ("accident", "urban_rural", 3),
        ("accident", "speed_limit", 6),
        ("accident", "junction", 9),
        ("accident", "special_conditions", 9),
        ("vehicle", "vtype", 20),
        ("vehicle", "age_band", 12),
        ("vehicle", "driver_sex", 3),
        ("vehicle", "driver_age_band", 11),
        ("vehicle", "skidding", 6),
        ("casualty", "class", 3),
        ("casualty", "sex", 3),
        ("casualty", "age_band", 11),
        ("casualty", "severity", 3),
        ("casualty", "pedestrian_loc", 11),
        ("casualty", "pedestrian_move", 10),
        ("accident_date", "month", 12),
        ("accident_date", "dow", 7),
        ("accident_date", "year", 27),
        ("accident_date", "week", 53),
        ("road", "road_class", 6),
        ("road", "surface_type", 5),
        ("road", "lighting", 4),
        ("stop_point", "stop_type", 12),
        ("stop_point", "status", 3),
        ("stop_point", "lat_band", 100),
        ("stop_point", "lon_band", 100),
        ("observation", "temp_band", 16),
        ("observation", "wind_band", 12),
        ("observation", "visibility", 8),
        ("model", "doors", 5),
        ("model", "fuel", 9),
        ("district", "area_type", 4),
        ("district", "population_band", 10),
        ("district", "region_id", 11),
        ("make", "country", 30),
        ("make", "founded_band", 12),
        ("weather_station", "status", 3),
    ];
    for (rel, attr, n) in domains {
        a.add_bounded_domain(rel, attr, *n)
            .expect("static domain constraint is valid");
    }
    a
}

/// `Value::Int` from an index.
#[inline]
fn iv(v: u64) -> Value {
    Value::Int(v as i64)
}

/// The 19 TFACC relations as streaming [`RowSource`]s, in load order.
/// Row `i` of each table is a pure function of `(scale, seed, i)`
/// ([`row_rng`] for unconstrained attributes, [`spread`]/[`spread2`] for
/// the balanced assignments that enforce the access schema), so any row
/// range can be generated independently.
pub fn sources(scale: f64, seed: u64) -> Vec<Box<dyn RowSource>> {
    assert!(
        (0.0..=2.0).contains(&scale),
        "TFACC constraints are calibrated for scale <= 2.0"
    );
    let accidents = scaled(80_000, scale, 1_000);
    let n_dates = scaled(N_DATES_BASE, scale, N_DATES_MIN);
    let vehicles = accidents * 9 / 5;
    let casualties = accidents * 13 / 10;
    let roads = scaled(20_000, scale, 500);
    let stops = scaled(30_000, scale, 600);
    let areas = (stops / 10).max(60);
    let localities = scaled(8_000, scale, 450);
    let observations = scaled(60_000, scale, 1_000);

    vec![
        // accident
        rows(RelId(0), 16, accidents, move |i, row| {
            let mut r = row_rng(seed, 1, i);
            let district = spread2(i, N_DISTRICTS);
            row.extend([
                iv(i),
                iv(spread(i, n_dates)),
                Value::Int(r.cat(24)),
                iv(district),
                Value::Int(r.cat(6)),
                Value::Int(r.cat(3)),
                Value::Int(r.cat(9)),
                Value::Int(r.cat(7)),
                Value::Int(r.cat(5)),
                Value::Int([20, 30, 40, 50, 60, 70][r.cat(6) as usize]),
                Value::Int(r.cat(9)),
                Value::Int(r.cat(4) + 1),
                Value::Int(r.cat(3) + 1),
                iv(district % 52), // FD: district -> police_force
                Value::Int(r.cat(3)),
                Value::Int(r.cat(9)),
            ]);
        }),
        // vehicle
        rows(RelId(1), 14, vehicles, move |v, row| {
            let mut r = row_rng(seed, 2, v);
            let make = spread2(v, N_MAKES);
            let model = make * 10 + (v % 10); // FD: model -> make
            row.extend([
                iv(v),
                iv(spread(v, accidents)),
                Value::Int(r.cat(20)),
                iv(make),
                iv(model),
                Value::Int(r.cat(12)),
                Value::Int(800 + r.cat(40) * 100),
                Value::Int(r.cat(18)),
                Value::Int(r.cat(6)),
                Value::Int(r.cat(12)),
                Value::Int(r.cat(6)),
                Value::Int(r.cat(9)),
                Value::Int(r.cat(11)),
                Value::Int(r.cat(3)),
            ]);
        }),
        // casualty
        rows(RelId(2), 10, casualties, move |c, row| {
            let mut r = row_rng(seed, 3, c);
            row.extend([
                iv(c),
                iv(spread(c, accidents)),
                iv(spread2(c, vehicles)),
                Value::Int(r.cat(3)),
                Value::Int(r.cat(3)),
                Value::Int(r.cat(11)),
                Value::Int(r.cat(3)),
                Value::Int(r.cat(11)),
                Value::Int(r.cat(10)),
                Value::Int(r.cat(3)),
            ]);
        }),
        // accident_date (calendar)
        rows(RelId(3), 6, n_dates, move |d, row| {
            let month = d * 12 / n_dates;
            row.extend([
                iv(d),
                iv(d % 28 + 1),
                iv(month),
                iv(1979 + d % 27),
                iv(d / 7 % 53),
                iv(d % 7),
            ]);
        }),
        // road
        rows(RelId(4), 6, roads, move |i, row| {
            let mut r = row_rng(seed, 5, i);
            row.extend([
                iv(i),
                Value::Int(r.cat(6)),
                Value::Int(r.cat(9000)),
                iv(spread(i, N_DISTRICTS)),
                Value::Int(r.cat(5)),
                Value::Int(r.cat(4)),
            ]);
        }),
        // accident_road
        rows(RelId(5), 2, accidents, move |i, row| {
            row.extend([iv(i), iv(spread2(i, roads))]);
        }),
        // district
        rows(RelId(6), 5, N_DISTRICTS, move |d, row| {
            let mut r = row_rng(seed, 7, d);
            row.extend([
                iv(d),
                iv(d),
                iv(spread(d, N_REGIONS)),
                Value::Int(r.cat(4)),
                Value::Int(r.cat(10)),
            ]);
        }),
        // region
        rows(RelId(7), 2, N_REGIONS, move |i, row| {
            row.extend([iv(i), iv(i)]);
        }),
        // make
        rows(RelId(8), 4, N_MAKES, move |m, row| {
            let mut r = row_rng(seed, 9, m);
            row.extend([iv(m), iv(m), Value::Int(r.cat(30)), Value::Int(r.cat(12))]);
        }),
        // model
        rows(RelId(9), 5, N_MODELS, move |m, row| {
            let mut r = row_rng(seed, 10, m);
            row.extend([
                iv(m),
                iv(m / 10),
                iv(m),
                Value::Int(r.cat(5) + 2),
                Value::Int(r.cat(9)),
            ]);
        }),
        // stop_point
        rows(RelId(10), 10, stops, move |s, row| {
            let mut r = row_rng(seed, 11, s);
            row.extend([
                iv(s),
                iv(s),
                Value::Int(r.cat(100)),
                Value::Int(r.cat(100)),
                Value::Int(r.cat(12)),
                iv(spread(s, N_DISTRICTS)),
                Value::Int(r.cat(3)),
                iv(900_000 + s),
                Value::Int(r.cat(700)),
                Value::Int(r.cat(1300)),
            ]);
        }),
        // stop_area
        rows(RelId(11), 5, areas, move |a, row| {
            let mut r = row_rng(seed, 12, a);
            row.extend([
                iv(a),
                iv(a),
                iv(spread(a, N_ADMIN)),
                Value::Int(r.cat(4)),
                iv(a * 7),
            ]);
        }),
        // area_stop (each stop in exactly one area; <= ceil(stops/areas) = 10/area)
        rows(RelId(12), 2, stops, move |s, row| {
            row.extend([iv(spread(s, areas)), iv(s)]);
        }),
        // admin_area
        rows(RelId(13), 4, N_ADMIN, move |a, row| {
            row.extend([iv(a), iv(a), iv(spread(a, N_REGIONS)), iv(a * 3)]);
        }),
        // locality
        rows(RelId(14), 5, localities, move |l, row| {
            row.extend([
                iv(l),
                iv(l),
                iv(spread(l, N_DISTRICTS)),
                iv(l / 10),
                iv(l * 13 % 9973),
            ]);
        }),
        // stop_locality
        rows(RelId(15), 2, stops, move |s, row| {
            row.extend([iv(s), iv(spread2(s, localities))]);
        }),
        // accident_stop (the fuzzy join: nearest stop per accident)
        rows(RelId(16), 3, accidents, move |i, row| {
            let mut r = row_rng(seed, 17, i);
            row.extend([iv(i), iv(spread(i, stops)), Value::Int(r.cat(500))]);
        }),
        // weather_station
        rows(RelId(17), 5, N_STATIONS, move |w, row| {
            let mut r = row_rng(seed, 18, w);
            row.extend([
                iv(w),
                iv(spread(w, N_DISTRICTS)),
                Value::Int(r.cat(1300)),
                Value::Int(1900 + r.cat(100)),
                Value::Int(r.cat(3)),
            ]);
        }),
        // observation (mixed-radix (ws, date) assignment: <= ceil per pair)
        rows(RelId(18), 7, observations, move |o, row| {
            let mut r = row_rng(seed, 19, o);
            row.extend([
                iv(o),
                iv(o % N_STATIONS),
                iv((o / N_STATIONS) % n_dates),
                Value::Int(r.cat(100)),
                Value::Int(r.cat(16)),
                Value::Int(r.cat(12)),
                Value::Int(r.cat(8)),
            ]);
        }),
    ]
}

/// Generates a TFACC instance at the given `scale` (the paper sweeps
/// `2^-5 … 1`) by streaming every [`sources`] table through the
/// bulk-ingest fast path. All declared constraints hold by construction
/// for `scale ≤ 2.0`.
pub fn generate(scale: f64, seed: u64) -> Database {
    let mut db = Database::new(catalog());
    for s in sources(scale, seed) {
        source::load(&mut db, s.as_ref());
    }
    db
}

/// The 15 TFACC workload queries (12 effectively bounded, 3 not — the
/// paper's 77 % rate holds across the three datasets: 35/45).
pub fn queries() -> Vec<WorkloadQuery> {
    let c = catalog;
    let q = |name: &str| SpcQuery::builder(c(), name);
    let mut out = Vec::new();
    let mut push = |query: SpcQuery, eb: bool| {
        out.push(WorkloadQuery::new(query, eb));
    };

    // T01: accidents on a given day in a given district (prod 0, sel 4).
    push(
        q("tfacc_day_district")
            .atom("accident", "ac")
            .eq_const(("ac", "date"), 5)
            .eq_const(("ac", "district_id"), 7)
            .eq_const(("ac", "severity"), 1)
            .eq_const(("ac", "road_class"), 2)
            .project(("ac", "aid"))
            .build()
            .unwrap(),
        true,
    );
    // T02: observations at one station on one day (prod 0, sel 4).
    push(
        q("tfacc_station_day")
            .atom("observation", "ob")
            .eq_const(("ob", "ws_id"), 17)
            .eq_const(("ob", "date"), 5)
            .eq_const(("ob", "wind_band"), 1)
            .eq_const(("ob", "visibility"), 2)
            .project(("ob", "obs_id"))
            .project(("ob", "rain_mm"))
            .project(("ob", "temp_band"))
            .build()
            .unwrap(),
        true,
    );
    // T03: vehicles of a type involved on a day (prod 1, sel 4).
    push(
        q("tfacc_day_vehicles")
            .atom("accident", "ac")
            .atom("vehicle", "ve")
            .eq_const(("ac", "date"), 5)
            .eq_const(("ac", "severity"), 1)
            .eq(("ve", "aid"), ("ac", "aid"))
            .eq_const(("ve", "vtype"), 3)
            .project(("ve", "vid"))
            .build()
            .unwrap(),
        true,
    );
    // T04: casualty chain (prod 2, sel 6).
    push(
        q("tfacc_casualties")
            .atom("accident", "ac")
            .atom("vehicle", "ve")
            .atom("casualty", "ca")
            .eq_const(("ac", "date"), 5)
            .eq(("ve", "aid"), ("ac", "aid"))
            .eq_const(("ve", "vtype"), 3)
            .eq(("ca", "aid"), ("ac", "aid"))
            .eq_const(("ca", "class"), 1)
            .eq_const(("ca", "sex"), 1)
            .project(("ca", "cid"))
            .build()
            .unwrap(),
        true,
    );
    // T05: accidents near public-transport stops (prod 2, sel 5).
    push(
        q("tfacc_near_stops")
            .atom("accident", "ac")
            .atom("accident_stop", "ast")
            .atom("stop_point", "sp")
            .eq_const(("ac", "date"), 5)
            .eq_const(("ac", "district_id"), 7)
            .eq(("ast", "aid"), ("ac", "aid"))
            .eq(("sp", "stop_id"), ("ast", "stop_id"))
            .eq_const(("sp", "status"), 1)
            .project(("ast", "stop_id"))
            .build()
            .unwrap(),
        true,
    );
    // T06: regional roll-up (prod 2, sel 5).
    push(
        q("tfacc_region")
            .atom("accident", "ac")
            .atom("district", "di")
            .atom("region", "re")
            .eq_const(("ac", "date"), 5)
            .eq_const(("ac", "severity"), 1)
            .eq(("di", "district_id"), ("ac", "district_id"))
            .eq(("re", "region_id"), ("di", "region_id"))
            .eq_const(("di", "area_type"), 1)
            .project(("re", "name"))
            .project(("ac", "aid"))
            .build()
            .unwrap(),
        true,
    );
    // T07: make/model of vehicles in accidents on a day (prod 3, sel 6).
    push(
        q("tfacc_make_model")
            .atom("vehicle", "ve")
            .atom("model", "mo")
            .atom("make", "mk")
            .atom("accident", "ac")
            .eq_const(("ve", "vtype"), 3)
            .eq(("mo", "model_id"), ("ve", "model_id"))
            .eq(("mk", "make_id"), ("mo", "make_id"))
            .eq(("ac", "aid"), ("ve", "aid"))
            .eq_const(("ac", "date"), 5)
            .eq_const(("mo", "fuel"), 1)
            .project(("mk", "name"))
            .project(("ve", "vid"))
            .build()
            .unwrap(),
        true,
    );
    // T08: accidents near one stop with calendar context (prod 3, sel 7).
    push(
        q("tfacc_stop_history")
            .atom("accident_stop", "ast")
            .atom("accident", "ac")
            .atom("accident_date", "ad")
            .atom("vehicle", "ve")
            .eq_const(("ast", "stop_id"), 17)
            .eq(("ac", "aid"), ("ast", "aid"))
            .eq(("ad", "date"), ("ac", "date"))
            .eq_const(("ad", "month"), 6)
            .eq(("ve", "aid"), ("ac", "aid"))
            .eq_const(("ve", "vtype"), 3)
            .eq_const(("ve", "driver_sex"), 1)
            .project(("ac", "aid"))
            .project(("ad", "dow"))
            .project(("ve", "vid"))
            .build()
            .unwrap(),
        true,
    );
    // T09: five-way (prod 4, sel 8).
    push(
        q("tfacc_five_way")
            .atom("accident", "ac")
            .atom("vehicle", "ve")
            .atom("casualty", "ca")
            .atom("accident_stop", "ast")
            .atom("stop_point", "sp")
            .eq_const(("ac", "date"), 5)
            .eq(("ve", "aid"), ("ac", "aid"))
            .eq_const(("ve", "vtype"), 3)
            .eq(("ca", "aid"), ("ac", "aid"))
            .eq_const(("ca", "class"), 1)
            .eq(("ast", "aid"), ("ac", "aid"))
            .eq(("sp", "stop_id"), ("ast", "stop_id"))
            .eq_const(("sp", "stop_type"), 5)
            .project(("ca", "cid"))
            .project(("sp", "stop_id"))
            .build()
            .unwrap(),
        true,
    );
    // T10: station observations by district (prod 1, sel 4).
    push(
        q("tfacc_ws_obs")
            .atom("weather_station", "ws")
            .atom("observation", "ob")
            .eq_const(("ws", "district_id"), 7)
            .eq_const(("ws", "status"), 1)
            .eq(("ob", "ws_id"), ("ws", "ws_id"))
            .eq_const(("ob", "date"), 5)
            .project(("ob", "obs_id"))
            .build()
            .unwrap(),
        true,
    );
    // T11: weather/light/surface profile — NOT effectively bounded: no
    // constraint reaches `aid` from these rng-valued attributes (prod 0,
    // sel 4).
    push(
        q("tfacc_weather_scan")
            .atom("accident", "ac")
            .eq_const(("ac", "weather"), 3)
            .eq_const(("ac", "light"), 1)
            .eq_const(("ac", "surface"), 2)
            .eq_const(("ac", "urban_rural"), 1)
            .project(("ac", "aid"))
            .build()
            .unwrap(),
        false,
    );
    // T12: skidding vehicles in bad weather — NOT effectively bounded
    // (prod 1, sel 5).
    push(
        q("tfacc_skidding")
            .atom("accident", "ac")
            .atom("vehicle", "ve")
            .eq_const(("ac", "severity"), 1)
            .eq_const(("ac", "weather"), 3)
            .eq(("ve", "aid"), ("ac", "aid"))
            .eq_const(("ve", "skidding"), 1)
            .eq_const(("ve", "towing"), 0)
            .project(("ve", "vid"))
            .build()
            .unwrap(),
        false,
    );
    // T13: accidents by road class — NOT effectively bounded (prod 2,
    // sel 4).
    push(
        q("tfacc_road_class")
            .atom("road", "ro")
            .atom("accident_road", "ar")
            .atom("accident", "ac")
            .eq_const(("ro", "road_class"), 2)
            .eq(("ar", "road_id"), ("ro", "road_id"))
            .eq(("ac", "aid"), ("ar", "aid"))
            .eq_const(("ro", "lighting"), 1)
            .project(("ac", "aid"))
            .build()
            .unwrap(),
        false,
    );
    // T14: stops in localities of a district (prod 2, sel 5).
    push(
        q("tfacc_locality_stops")
            .atom("locality", "lo")
            .atom("stop_locality", "sl")
            .atom("stop_point", "sp")
            .eq_const(("lo", "district_id"), 7)
            .eq(("sl", "loc_id"), ("lo", "loc_id"))
            .eq(("sp", "stop_id"), ("sl", "stop_id"))
            .eq_const(("sp", "stop_type"), 5)
            .eq_const(("sp", "status"), 1)
            .project(("sp", "stop_id"))
            .build()
            .unwrap(),
        true,
    );
    // T15: Boolean — any class-1 casualty that day in that district?
    // (prod 1, sel 4).
    push(
        q("tfacc_bool_casualty")
            .atom("accident", "ac")
            .atom("casualty", "ca")
            .eq_const(("ac", "date"), 5)
            .eq_const(("ac", "district_id"), 7)
            .eq(("ca", "aid"), ("ac", "aid"))
            .eq_const(("ca", "class"), 1)
            .build()
            .unwrap(),
        true,
    );

    out
}

/// The TFACC dataset bundle.
pub fn dataset() -> Dataset {
    Dataset {
        name: "TFACC",
        catalog: catalog(),
        access: access_schema(),
        queries: queries(),
        generate: |scale, seed| generate(scale, seed),
        sources: |scale, seed| sources(scale, seed),
        default_scale: 1.0,
        scale_ladder: &[0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcq_core::ebcheck::ebcheck;
    use bcq_storage::validate;

    #[test]
    fn schema_matches_paper_shape() {
        let c = catalog();
        assert_eq!(c.len(), 19, "19 tables");
        assert_eq!(c.total_attributes(), 113, "113 attributes");
    }

    #[test]
    fn eighty_four_constraints() {
        assert_eq!(access_schema().len(), 84);
    }

    #[test]
    fn generated_data_satisfies_access_schema() {
        let a = access_schema();
        let mut db = generate(0.02, 42);
        let violations = validate(&mut db, &a);
        assert!(violations.is_empty(), "first violation: {}", violations[0]);
    }

    #[test]
    fn effective_boundedness_matches_expectations() {
        let a = access_schema();
        for wq in queries() {
            let report = ebcheck(&wq.query, &a);
            assert_eq!(
                report.effectively_bounded,
                wq.expect_effectively_bounded,
                "query {}: {:?}",
                wq.query.name(),
                report.first_failure(&wq.query)
            );
        }
    }

    #[test]
    fn twelve_of_fifteen_effectively_bounded() {
        let n = queries()
            .iter()
            .filter(|w| w.expect_effectively_bounded)
            .count();
        assert_eq!(n, 12);
    }

    #[test]
    fn sel_and_prod_ranges_match_paper() {
        let qs = queries();
        assert_eq!(qs.len(), 15);
        for w in &qs {
            assert!(
                (4..=8).contains(&w.query.num_sel()),
                "{}: #-sel {}",
                w.query.name(),
                w.query.num_sel()
            );
            assert!(w.query.num_prod() <= 4);
        }
        // Both extremes occur.
        assert!(qs.iter().any(|w| w.query.num_prod() == 0));
        assert!(qs.iter().any(|w| w.query.num_prod() == 4));
        assert!(qs.iter().any(|w| w.query.num_sel() == 8));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0.01, 7);
        let b = generate(0.01, 7);
        assert_eq!(a.total_tuples(), b.total_tuples());
        let t1 = a.table(RelId(0));
        let t2 = b.table(RelId(0));
        for i in 0..t1.len().min(50) {
            assert_eq!(t1.row(i), t2.row(i));
        }
    }

    #[test]
    fn scale_controls_size() {
        let small = generate(0.01, 7).total_tuples();
        let big = generate(0.05, 7).total_tuples();
        assert!(big > small * 2, "scaling had no effect: {small} vs {big}");
    }
}
