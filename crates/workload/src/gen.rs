//! Deterministic generation helpers.
//!
//! Access constraints are enforced **by construction**: children are
//! assigned to parents with [`spread`], a multiplicative permutation that
//! distributes `m` children over `n` parents with per-parent counts of
//! exactly `⌊m/n⌋` or `⌈m/n⌉` — so a declared bound `N ≥ ⌈m/n⌉` can never
//! be violated, at any scale. Unconstrained attributes use a seeded
//! [`rand::rngs::SmallRng`] for realistic variety with full determinism.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Multiplier for the spread permutation (a prime larger than any table
/// cardinality we generate, so it is coprime with every modulus).
const SPREAD_PRIME: u64 = 2_654_435_761;

/// A second prime for independent assignments of the same child id.
const SPREAD_PRIME_2: u64 = 4_294_967_311;

/// Assigns child `i` to one of `n` parents. For `i` ranging over `0..m`,
/// each parent receives `⌊m/n⌋` or `⌈m/n⌉` children.
#[inline]
pub fn spread(i: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    i.wrapping_mul(SPREAD_PRIME) % n
}

/// A second, independent balanced assignment (different permutation).
#[inline]
pub fn spread2(i: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    i.wrapping_mul(SPREAD_PRIME_2) % n
}

/// Scales a base cardinality, clamped to at least `min`.
///
/// Computed exactly in integer arithmetic: the scale factor is decomposed
/// into its dyadic rational `mantissa × 2^exp` and the product is taken in
/// `u128`, so cardinalities above 2^53 never round through an `f64` and
/// `⌊base · scale⌋` is exact for every representable scale (the naive
/// `(base as f64 * scale) as u64` silently truncated large counts and
/// double-rounded non-terminating fractions like `0.1`).
pub fn scaled(base: u64, scale: f64, min: u64) -> u64 {
    assert!(
        scale.is_finite() && scale >= 0.0,
        "scale must be finite and non-negative"
    );
    let bits = scale.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    let (mant, exp) = if biased == 0 {
        (frac, -1074i64) // subnormal (covers scale == 0.0 too)
    } else {
        (frac | (1u64 << 52), biased - 1075)
    };
    // base ≤ 2^64 and mant ≤ 2^53, so the product fits in u128 exactly.
    let prod = base as u128 * mant as u128;
    let v = if exp >= 0 {
        let shift = u32::try_from(exp).expect("scale exponent out of range");
        prod.checked_shl(shift)
            .filter(|&s| s >> shift == prod)
            .expect("scaled cardinality overflows u128")
    } else if exp <= -128 {
        0
    } else {
        prod >> (-exp) as u32
    };
    u64::try_from(v)
        .expect("scaled cardinality exceeds u64")
        .max(min)
}

/// A deterministic RNG for a (dataset seed, table) pair.
pub fn table_rng(seed: u64, table_tag: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ table_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Uniform categorical value in `0..n`.
#[inline]
pub fn cat(rng: &mut SmallRng, n: u64) -> i64 {
    rng.gen_range(0..n) as i64
}

/// A random-access deterministic RNG for one generated row: a splitmix64
/// stream keyed by `(seed, table, row)`, so row `i`'s unconstrained
/// attributes are a pure function of `i` and any row range can be
/// generated independently of any other (the property the streaming
/// [`crate::source::RowSource`] partitioning relies on — a shared
/// sequential [`SmallRng`] would serialize generation).
#[derive(Debug, Clone)]
pub struct RowRng {
    state: u64,
}

/// The RNG for row `row` of table `table_tag` under dataset seed `seed`.
#[inline]
pub fn row_rng(seed: u64, table_tag: u64, row: u64) -> RowRng {
    RowRng {
        state: seed
            ^ table_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ row.wrapping_mul(0xA24B_AED4_963E_E407),
    }
}

impl RowRng {
    /// The next word of the stream (splitmix64).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform categorical value in `0..n`.
    #[inline]
    pub fn cat(&mut self, n: u64) -> i64 {
        debug_assert!(n > 0);
        (self.next_u64() % n) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn spread_is_balanced() {
        let (m, n) = (10_000u64, 37u64);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for i in 0..m {
            *counts.entry(spread(i, n)).or_default() += 1;
        }
        assert_eq!(counts.len() as u64, n);
        let lo = m / n;
        let hi = lo + 1;
        for (_, c) in counts {
            assert!(c == lo || c == hi, "unbalanced count {c}");
        }
    }

    #[test]
    fn spread_variants_are_independent() {
        // The two permutations should disagree on most inputs.
        let n = 101;
        let disagreements = (0..1000).filter(|&i| spread(i, n) != spread2(i, n)).count();
        assert!(disagreements > 900);
    }

    #[test]
    fn scaled_clamps() {
        assert_eq!(scaled(1000, 0.5, 1), 500);
        assert_eq!(scaled(1000, 0.0001, 25), 25);
        assert_eq!(scaled(1000, 2.0, 1), 2000);
    }

    #[test]
    fn scaled_is_exact_above_f64_precision() {
        // One past 2^53: the old f64 round-trip collapsed this to 2^53.
        let base = (1u64 << 53) + 1;
        assert_eq!(scaled(base, 1.0, 0), base);
        assert_eq!(scaled(base, 2.0, 0), 2 * base);
        assert_eq!(scaled(base, 0.5, 0), 1 << 52); // floor(base / 2)
                                                   // SF-100 on a >2^53 count stays exact.
        assert_eq!(scaled(1 << 53, 100.0, 0), 100 << 53);
        // A dyadic scale divides exactly even above 2^53.
        let big = 123_456_789_012_345_678u64;
        assert_eq!(scaled(big, 0.125, 0), big / 8);
        // Non-terminating fractions floor the true product of the
        // representable scale: 0.1f64 is slightly above 1/10.
        assert_eq!(scaled(10u64.pow(16), 0.1, 0), 10u64.pow(15));
        assert_eq!(scaled(u64::MAX, 1.0, 0), u64::MAX);
        assert_eq!(scaled(123, 0.0, 7), 7);
    }

    #[test]
    fn row_rng_is_deterministic_and_row_local() {
        let mut a = row_rng(42, 7, 1000);
        let mut b = row_rng(42, 7, 1000);
        for _ in 0..100 {
            assert_eq!(a.cat(1000), b.cat(1000));
        }
        // Different rows (and tables) give independent streams.
        let mut c = row_rng(42, 7, 1001);
        let same = (0..100).filter(|_| a.cat(1000) == c.cat(1000)).count();
        assert!(same < 20);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = table_rng(42, 7);
        let mut b = table_rng(42, 7);
        for _ in 0..100 {
            assert_eq!(cat(&mut a, 1000), cat(&mut b, 1000));
        }
        // Different tags diverge.
        let mut c = table_rng(42, 8);
        let same = (0..100)
            .filter(|_| cat(&mut a, 1000) == cat(&mut c, 1000))
            .count();
        assert!(same < 20);
    }
}
