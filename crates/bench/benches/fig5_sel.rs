//! Figure 5(c)/(g)/(k): evalDQ bucketed by the number of equality atoms
//! (`#-sel`) in the selection condition.

use bcq_core::qplan::qplan;
use bcq_exec::eval_dq;
use bcq_workload::all_datasets;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    for ds in all_datasets() {
        let scale = ds.scale_ladder[ds.scale_ladder.len() / 2];
        let db = ds.build(scale);
        let mut group = c.benchmark_group(format!("fig5_sel/{}", ds.name));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
        for nsel in 4..=8usize {
            let plans: Vec<_> = ds
                .effectively_bounded_queries()
                .filter(|w| w.query.num_sel() == nsel)
                .map(|w| qplan(&w.query, &ds.access).expect("workload query plans"))
                .collect();
            if plans.is_empty() {
                continue;
            }
            group.bench_function(format!("evalDQ/sel{nsel}"), |b| {
                b.iter(|| {
                    for plan in &plans {
                        let out = eval_dq(&db, plan, &ds.access).unwrap();
                        std::hint::black_box(out.result.len());
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
