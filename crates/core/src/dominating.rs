//! Dominating parameters (Section 4.3): making non-effectively-bounded
//! queries effectively bounded by instantiating a few parameters.
//!
//! `X_P` is a set of *dominating parameters* of `Q` under `A` w.r.t. a
//! fraction `α` if `|X_P| / denom ≤ α` and `Q(X_P = ā)` is effectively
//! bounded under `A` for every value `ā`. Deciding existence (`DP`) is
//! NP-complete and computing a minimum set (`MDP`) is NPO-complete
//! (Theorem 7); the paper's answer is the three-step heuristic `findDPh`,
//! implemented by [`find_dp`]. A reference exponential solver
//! ([`find_dp_exact`]) is provided for testing the heuristic and for the
//! hardness ablation benchmarks.
//!
//! **Ratio denominator.** The definition divides by `|X_B|`, but Example 9
//! evaluates `α = 3/7` against all seven parameters of `Q1` (two of which
//! are `Σ_Q`-equal to the output attribute and hence not in `X_B`). Both
//! readings are supported via [`RatioDenominator`]; the default
//! (`AllParams`) reproduces Example 9.

use crate::access::AccessSchema;
use crate::ebcheck::{ebcheck_with_seeds, xq_cols};
use crate::query::{QAttr, SpcQuery};
use crate::sigma::{ClassId, Sigma};
use std::collections::BTreeSet;

/// What to divide `|X_P|` by when enforcing the `α` fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RatioDenominator {
    /// All parameters of `Q` (attributes occurring in `C`, `Z`, or marked as
    /// placeholders) — matches Example 9's `3/7`.
    #[default]
    AllParams,
    /// The letter of the definition: `|X_B|`, the condition-only
    /// uninstantiated attributes.
    XbOnly,
}

/// Configuration for the dominating-parameter search.
#[derive(Debug, Clone, Copy)]
pub struct DominatingConfig {
    /// The fraction `α`; a returned `X_P` satisfies `|X_P|/denom ≤ α`.
    pub alpha: f64,
    /// Denominator choice (see [`RatioDenominator`]).
    pub denominator: RatioDenominator,
}

impl Default for DominatingConfig {
    fn default() -> Self {
        DominatingConfig {
            alpha: 1.0,
            denominator: RatioDenominator::AllParams,
        }
    }
}

impl DominatingConfig {
    /// Paper-style configuration with an explicit `α ∈ (0, 1]`.
    pub fn with_alpha(alpha: f64) -> Self {
        DominatingConfig {
            alpha,
            ..Default::default()
        }
    }
}

/// A set of dominating parameters.
#[derive(Debug, Clone)]
pub struct DominatingSet {
    /// The parameters to instantiate, sorted by (atom, col).
    pub attrs: Vec<QAttr>,
    /// Their `Σ_Q` classes, deduplicated.
    pub classes: Vec<ClassId>,
    /// `|X_P| / denom` for the configured denominator.
    pub ratio: f64,
}

/// The number of parameter attributes used as the ratio denominator.
fn denominator(q: &SpcQuery, sigma: &Sigma, which: RatioDenominator) -> usize {
    match which {
        RatioDenominator::AllParams => q.parameters().len(),
        RatioDenominator::XbOnly => sigma
            .xb_classes()
            .iter()
            .flat_map(|id| &sigma.class(*id).members)
            .filter(|m| sigma.occurs_in_condition(q.flat_id(**m)))
            .count(),
    }
}

/// The heuristic `findDPh` (Section 4.3). Returns a set of dominating
/// parameters w.r.t. `cfg.alpha`, or `None` if the heuristic cannot find one
/// (either none exists — e.g. Example 8 — or the minimized set misses the
/// ratio).
///
/// Runs in `O(|Q|(|Q| + |A|))`.
pub fn find_dp(q: &SpcQuery, a: &AccessSchema, cfg: DominatingConfig) -> Option<DominatingSet> {
    let sigma = Sigma::build(q);
    if !sigma.is_satisfiable() {
        // Trivially effectively bounded; nothing to instantiate.
        return Some(DominatingSet {
            attrs: Vec::new(),
            classes: Vec::new(),
            ratio: 0.0,
        });
    }

    // Step 1: initial candidates — every uninstantiated parameter that some
    // constraint of its relation covers (appears in X ∪ Y).
    let mut xp: BTreeSet<usize> = BTreeSet::new();
    for attr in q.parameters() {
        let flat = q.flat_id(attr);
        if sigma.class(sigma.class_of_flat(flat)).constant.is_some() {
            continue; // already in X_C
        }
        let rel = q.relation_of(attr.atom);
        let covered = a.for_relation(rel).iter().any(|&cid| {
            let c = a.constraint(cid);
            c.x().contains(&attr.col) || c.y().contains(&attr.col)
        });
        if covered {
            xp.insert(flat);
        } else {
            // Step 2(b) failure: this parameter can never be checked via an
            // index, so no instantiation helps (Example 8).
            return None;
        }
    }

    // Step 2: the (virtually instantiated) parameter set of each atom must
    // be indexed in A.
    for atom in 0..q.num_atoms() {
        let mut cols = xq_cols(q, &sigma, atom);
        for &flat in &xp {
            let attr = q.attr_of_flat(flat);
            if attr.atom == atom && !cols.contains(&attr.col) {
                cols.push(attr.col);
            }
        }
        cols.sort_unstable();
        if cols.is_empty() {
            continue;
        }
        a.covering_constraint(q.relation_of(atom), &cols)?;
    }

    // Step 3: minimize — drop ext_Q(A) whenever A is recoverable from the
    // remaining X_P via a constraint X → (Y, N) with S_i[X] ⊆ X_P ∪ X_C,
    // A ∉ S_i[X], A ∈ S_i[Y].
    let class_available = |xp: &BTreeSet<usize>, cls: ClassId| {
        sigma.class(cls).constant.is_some()
            || sigma
                .class(cls)
                .members
                .iter()
                .any(|m| xp.contains(&q.flat_id(*m)))
    };
    loop {
        let mut removed = false;
        let snapshot: Vec<usize> = xp.iter().copied().collect();
        for flat in snapshot {
            if !xp.contains(&flat) {
                continue; // removed as part of an earlier ext class
            }
            let attr = q.attr_of_flat(flat);
            let rel = q.relation_of(attr.atom);
            let recoverable = a.for_relation(rel).iter().any(|&cid| {
                let c = a.constraint(cid);
                if !c.y().contains(&attr.col) || c.x().contains(&attr.col) {
                    return false;
                }
                c.x().iter().all(|&xcol| {
                    let cls = sigma.class_of_flat(q.flat_id(QAttr::new(attr.atom, xcol)));
                    class_available(&xp, cls)
                })
            });
            if recoverable {
                // ext_Q(attr): every attribute Σ_Q-equal to it.
                let cls = sigma.class_of_flat(flat);
                for m in &sigma.class(cls).members {
                    xp.remove(&q.flat_id(*m));
                }
                removed = true;
            }
        }
        if !removed {
            break;
        }
    }

    let set = build_set(q, &sigma, &xp, cfg);
    // α gate.
    if set.ratio > cfg.alpha + 1e-9 {
        return None;
    }
    // Soundness guard: the returned X_P must actually work (the paper proves
    // this for findDPh; we verify rather than trust).
    let verified = ebcheck_with_seeds(q, &sigma, a, &set.classes).effectively_bounded;
    debug_assert!(verified, "findDPh produced a non-dominating X_P");
    verified.then_some(set)
}

/// Exact (exponential) minimum dominating-parameter search, for testing and
/// ablations. Enumerates candidate subsets by increasing cardinality and
/// returns the first one making `Q` effectively bounded (ties broken by
/// enumeration order), or `None` if none exists within the ratio gate.
///
/// `max_candidates` caps the candidate pool (the uninstantiated parameters);
/// pools larger than the cap return `None` to avoid runaway blowup —
/// Theorem 7 says this is unavoidable in the worst case.
pub fn find_dp_exact(
    q: &SpcQuery,
    a: &AccessSchema,
    cfg: DominatingConfig,
    max_candidates: usize,
) -> Option<DominatingSet> {
    let sigma = Sigma::build(q);
    if !sigma.is_satisfiable() {
        return Some(DominatingSet {
            attrs: Vec::new(),
            classes: Vec::new(),
            ratio: 0.0,
        });
    }
    let mut candidates: Vec<usize> = Vec::new();
    for attr in q.parameters() {
        let flat = q.flat_id(attr);
        if sigma.class(sigma.class_of_flat(flat)).constant.is_none() {
            candidates.push(flat);
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    if candidates.len() > max_candidates {
        return None;
    }
    let n = candidates.len();
    let denom = denominator(q, &sigma, cfg.denominator).max(1);
    let max_size = ((cfg.alpha * denom as f64) + 1e-9).floor() as usize;

    // Enumerate subsets in order of increasing cardinality.
    for size in 0..=n.min(max_size) {
        let mut subset: Vec<usize> = (0..size).collect();
        loop {
            let flats: BTreeSet<usize> = subset.iter().map(|&i| candidates[i]).collect();
            let set = build_set(q, &sigma, &flats, cfg);
            if ebcheck_with_seeds(q, &sigma, a, &set.classes).effectively_bounded {
                return Some(set);
            }
            if !next_combination(&mut subset, n) {
                break;
            }
        }
    }
    None
}

/// Advances `subset` to the next k-combination of `0..n`; `false` when done.
fn next_combination(subset: &mut [usize], n: usize) -> bool {
    let k = subset.len();
    if k == 0 {
        return false;
    }
    let mut i = k;
    while i > 0 {
        i -= 1;
        if subset[i] < n - (k - i) {
            subset[i] += 1;
            for j in i + 1..k {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

fn build_set(
    q: &SpcQuery,
    sigma: &Sigma,
    xp: &BTreeSet<usize>,
    cfg: DominatingConfig,
) -> DominatingSet {
    let attrs: Vec<QAttr> = xp.iter().map(|&f| q.attr_of_flat(f)).collect();
    let mut classes: Vec<ClassId> = xp.iter().map(|&f| sigma.class_of_flat(f)).collect();
    classes.sort_unstable();
    classes.dedup();
    let denom = denominator(q, sigma, cfg.denominator).max(1);
    DominatingSet {
        ratio: attrs.len() as f64 / denom as f64,
        attrs,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::fixtures::{a0, photos_catalog, q0, q1};
    use crate::query::SpcQuery;
    use crate::value::Value;

    #[test]
    fn example_9_q1_under_a0() {
        // findDPh on Q1 with α = 3/7 returns X_P = {aid, uid, tid2}.
        let q = q1();
        let a = a0();
        let set = find_dp(&q, &a, DominatingConfig::with_alpha(3.0 / 7.0)).unwrap();
        let names: Vec<String> = set.attrs.iter().map(|at| q.attr_name(*at)).collect();
        assert_eq!(
            names,
            vec!["ia.album_id", "f.user_id", "t.taggee_id"],
            "expected the paper's X_P"
        );
        assert!((set.ratio - 3.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn example_9_instantiation_recovers_q0() {
        // Instantiating the returned X_P with Example 1's values yields an
        // effectively bounded query (it *is* Q0 modulo placeholder
        // bookkeeping).
        let q = q1();
        let a = a0();
        let set = find_dp(&q, &a, DominatingConfig::default()).unwrap();
        let consts: Vec<(QAttr, Value)> = set
            .attrs
            .iter()
            .map(|at| {
                let v = if q.attr_name(*at).contains("album") {
                    Value::str("a0")
                } else {
                    Value::str("u0")
                };
                (*at, v)
            })
            .collect();
        let ground = q.with_constants(&consts);
        let report = crate::ebcheck::ebcheck(&ground, &a);
        assert!(report.effectively_bounded);
        // And it matches Q0's verdict.
        assert!(crate::ebcheck::ebcheck(&q0(), &a).effectively_bounded);
    }

    #[test]
    fn example_8_no_dominating_set_without_tagging_index() {
        // A1 = A0 minus the tagging constraint: no instantiation of Q0's (or
        // Q1's) parameters makes them effectively bounded.
        let a1 = a0().filtered(|_, c| c.n() != 1);
        assert!(find_dp(&q1(), &a1, DominatingConfig::default()).is_none());
        assert!(find_dp(&q0(), &a1, DominatingConfig::default()).is_none());
        assert!(find_dp_exact(&q1(), &a1, DominatingConfig::default(), 16).is_none());
    }

    #[test]
    fn already_effectively_bounded_query_needs_nothing() {
        // Q0 is effectively bounded: the exact solver returns the empty set.
        let set = find_dp_exact(&q0(), &a0(), DominatingConfig::default(), 16).unwrap();
        assert!(set.attrs.is_empty());
        assert_eq!(set.ratio, 0.0);
    }

    #[test]
    fn heuristic_matches_exact_on_q1() {
        let q = q1();
        let a = a0();
        let h = find_dp(&q, &a, DominatingConfig::default()).unwrap();
        let e = find_dp_exact(&q, &a, DominatingConfig::default(), 16).unwrap();
        // The heuristic keeps tid2 (not removable by the Y-rule); the exact
        // solver can do better because instantiating uid also covers tid2
        // through Σ_Q.
        assert!(e.attrs.len() <= h.attrs.len());
        assert!(e.classes.len() <= h.classes.len());
        // Both are sound.
        let sigma = Sigma::build(&q);
        assert!(ebcheck_with_seeds(&q, &sigma, &a, &h.classes).effectively_bounded);
        assert!(ebcheck_with_seeds(&q, &sigma, &a, &e.classes).effectively_bounded);
    }

    #[test]
    fn alpha_gate_rejects_large_sets() {
        // α = 1/7 cannot be met by the heuristic's 3-attribute X_P.
        let q = q1();
        let a = a0();
        assert!(find_dp(&q, &a, DominatingConfig::with_alpha(1.0 / 7.0)).is_none());
    }

    #[test]
    fn ratio_uses_configured_denominator() {
        let q = q1();
        let a = a0();
        let cfg = DominatingConfig {
            alpha: 1.0,
            denominator: RatioDenominator::XbOnly,
        };
        let set = find_dp(&q, &a, cfg).unwrap();
        // X_B of Q1 = {fid, tid1, uid, tid2} (aid is placeholder-inert), so
        // the ratio is 3/4.
        assert!((set.ratio - 0.75).abs() < 1e-9, "ratio = {}", set.ratio);
    }

    #[test]
    fn unsatisfiable_query_has_empty_dominating_set() {
        let cat = photos_catalog();
        let q = SpcQuery::builder(cat, "bad")
            .atom("friends", "f")
            .eq_const(("f", "user_id"), 1)
            .eq_const(("f", "user_id"), 2)
            .project(("f", "friend_id"))
            .build()
            .unwrap();
        let set = find_dp(&q, &a0(), DominatingConfig::default()).unwrap();
        assert!(set.attrs.is_empty());
    }

    #[test]
    fn exact_respects_candidate_cap() {
        let q = q1();
        let a = a0();
        assert!(find_dp_exact(&q, &a, DominatingConfig::default(), 2).is_none());
    }

    #[test]
    fn next_combination_enumerates_all() {
        let mut c = vec![0, 1];
        let mut seen = vec![c.clone()];
        while next_combination(&mut c, 4) {
            seen.push(c.clone());
        }
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }
}
