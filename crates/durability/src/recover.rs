//! Crash recovery: latest usable snapshot + log replay to a consistent
//! epoch vector.
//!
//! Recovery proceeds in four steps:
//!
//! 1. **Snapshot.** Snapshot blobs are tried newest-first; a torn or
//!    corrupt blob is skipped (that is what a crash mid-checkpoint leaves
//!    behind) and the previous one is used, falling back to an empty
//!    database when none decodes. The snapshot fixes the replay start:
//!    records with sequence numbers ≤ its `last_seq` are already folded in.
//! 2. **Merge.** Every stream (`meta` + `rel-<n>`) is split into intact
//!    frames — torn tails dropped, CRC mismatches loudly fatal — and the
//!    decoded records are merged by global sequence number. The replayable
//!    history is the **longest gap-free run** after the snapshot boundary:
//!    a missing sequence number means every later record may depend on
//!    un-synced state, so everything beyond the gap is discarded.
//! 3. **Replay.** The kept run is re-applied through the public
//!    [`Database`] API. A side symbol table (snapshot dump + intern
//!    records) decodes each record's raw cell words back to values; the
//!    replaying database re-interns them in the original emission order,
//!    so the rebuilt cells — and therefore rows, indices, and epochs — are
//!    bit-identical. Each commit-bearing record asserts the database
//!    arrived at exactly its commit stamp. A bulk load replays only if its
//!    closing [`RecordBody::BulkEnd`] made it to the log; an open bulk at
//!    the tail is torn and discarded whole.
//! 4. **Truncate.** Streams are cut back to the last kept record, so the
//!    discarded suffix can never resurface and a writer restarted at
//!    `last_seq + 1` never collides. This is also what makes recovery
//!    idempotent: recovering twice equals recovering once.
//!
//! [`ReplayObserver`] lets the serving tier watch replayed mutations (to
//! drive registered incremental views back to consistency through the
//! same delta paths used live).

use crate::frame::{decode_frames, FrameError};
use crate::record::{RecordBody, WalRecord};
use crate::snapshot::{decode_snapshot, restore_snapshot, SNAP_PREFIX};
use crate::storage::LogStorage;
use crate::writer::{parse_rel_stream, META_STREAM};
use bcq_core::prelude::{Catalog, Cell, CellKind, RelId, SymbolTable, Value};
use bcq_storage::Database;
use std::io;
use std::sync::Arc;

/// Why recovery refused to produce a database.
#[derive(Debug)]
pub enum RecoverError {
    /// The log storage failed.
    Io(io::Error),
    /// A fully-present record failed its CRC — stored bytes changed, which
    /// a crash cannot do, so replaying would mean replaying garbage.
    Corrupt {
        /// Stream holding the damaged record.
        stream: String,
        /// Byte offset of the record's frame header within the stream.
        offset: usize,
    },
    /// A frame passed its CRC but its payload does not parse (codec bug or
    /// version skew) — never silently skippable.
    Record {
        /// Stream holding the unparseable record.
        stream: String,
        /// Decoder diagnostic.
        msg: String,
    },
    /// The kept run does not replay cleanly (out-of-contract log, e.g. a
    /// logged delete that misses, or a commit-stamp mismatch).
    Replay(String),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "log storage I/O: {e}"),
            RecoverError::Corrupt { stream, offset } => {
                write!(f, "stream `{stream}`: CRC mismatch at byte offset {offset}")
            }
            RecoverError::Record { stream, msg } => {
                write!(f, "stream `{stream}`: unparseable record: {msg}")
            }
            RecoverError::Replay(msg) => write!(f, "replay diverged: {msg}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// What recovery did, for logs and telemetry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Name of the snapshot blob restored from, if any.
    pub snapshot: Option<String>,
    /// Newer snapshot blobs skipped because they were torn or corrupt.
    pub snapshots_skipped: usize,
    /// Records re-applied from the log (op, intern, and bulk records).
    pub replayed: u64,
    /// Records discarded: beyond a sequence gap, or part of a torn bulk.
    pub discarded: u64,
    /// Torn tail bytes dropped across all streams.
    pub torn_bytes: u64,
    /// Highest durable sequence number after recovery; a new writer starts
    /// at `last_seq + 1`.
    pub last_seq: u64,
    /// Streams truncated to cut the discarded suffix.
    pub truncated_streams: usize,
}

/// One replayed mutation, as seen by a [`ReplayObserver`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayEvent {
    /// A row was inserted (`maintained` mirrors which insert path ran).
    Inserted {
        /// Touched relation.
        rel: RelId,
        /// The inserted row.
        row: Vec<Value>,
        /// Whether indices were maintained in place.
        maintained: bool,
    },
    /// One copy of a row was deleted.
    Deleted {
        /// Touched relation.
        rel: RelId,
        /// The deleted row.
        row: Vec<Value>,
        /// Whether indices were maintained in place.
        maintained: bool,
    },
    /// A complete bulk load was re-applied (indices dropped).
    BulkLoaded {
        /// Loaded relation.
        rel: RelId,
    },
    /// An index build was re-applied.
    IndexBuilt {
        /// Indexed relation.
        rel: RelId,
    },
}

/// Watches recovery so higher layers (registered views in `bcq-service`)
/// can ride replay back to consistency through their live delta paths.
pub trait ReplayObserver {
    /// The snapshot (or empty database) is restored; replay starts now.
    fn snapshot_loaded(&mut self, _db: &Database) {}
    /// One mutation was re-applied; `db` already reflects it.
    fn applied(&mut self, _db: &Database, _event: ReplayEvent) {}
}

struct NoopObserver;
impl ReplayObserver for NoopObserver {}

/// Recovers a database from `storage` (see the [module docs](self)).
pub fn recover(
    storage: &dyn LogStorage,
    catalog: Arc<Catalog>,
) -> Result<(Database, RecoveryReport), RecoverError> {
    recover_with(storage, catalog, &mut NoopObserver)
}

/// A record staged for replay: where it sits, so the stream can be
/// truncated behind it.
#[derive(Debug)]
struct Staged {
    stream: usize,
    end_offset: usize,
    record: WalRecord,
}

/// An in-flight bulk load being buffered until its `BulkEnd` proves it
/// complete. Interns are buffered alongside the rows: a torn bulk is
/// discarded whole, and its intern records are truncated away with it, so
/// they must not leak into the recovered database's symbol table (a later
/// writer would then skip re-logging them).
struct PendingBulk {
    rel: u32,
    commit: u64,
    begin_seq: u64,
    rows: Vec<Vec<Value>>,
    interns: Vec<Intern>,
}

/// One buffered intern record of an in-flight bulk load.
enum Intern {
    Str(String),
    Wide(i64),
}

/// [`recover`], with an observer watching each replayed mutation.
pub fn recover_with(
    storage: &dyn LogStorage,
    catalog: Arc<Catalog>,
    observer: &mut dyn ReplayObserver,
) -> Result<(Database, RecoveryReport), RecoverError> {
    let mut report = RecoveryReport::default();

    // 1. Newest usable snapshot, else empty database.
    let mut snaps: Vec<String> = storage
        .list_blobs()?
        .into_iter()
        .filter(|n| n.starts_with(SNAP_PREFIX))
        .collect();
    snaps.sort();
    let mut db = None;
    let mut side = SymbolTable::new();
    let mut snap_seq = 0;
    for name in snaps.iter().rev() {
        let Some(bytes) = storage.read_blob(name)? else {
            continue;
        };
        let restored = decode_snapshot(&bytes).and_then(|snap| {
            let seq = snap.last_seq;
            let symbols = snap.symbols.clone();
            restore_snapshot(catalog.clone(), snap).map(|db| (db, symbols, seq))
        });
        match restored {
            Ok((restored_db, symbols, seq)) => {
                db = Some(restored_db);
                side = symbols;
                snap_seq = seq;
                report.snapshot = Some(name.clone());
                break;
            }
            Err(_) => report.snapshots_skipped += 1,
        }
    }
    let mut db = db.unwrap_or_else(|| Database::new(catalog.clone()));
    observer.snapshot_loaded(&db);

    // 2. Decode every stream and merge records by sequence number.
    let mut streams: Vec<String> = storage
        .streams()?
        .into_iter()
        .filter(|s| s == META_STREAM || parse_rel_stream(s).is_some())
        .collect();
    streams.sort();
    let mut staged = Vec::new();
    let mut stream_lens = Vec::with_capacity(streams.len());
    for (si, stream) in streams.iter().enumerate() {
        let bytes = storage.read(stream)?;
        stream_lens.push(bytes.len());
        let decoded = decode_frames(&bytes).map_err(|FrameError::Corrupt { offset }| {
            RecoverError::Corrupt {
                stream: stream.clone(),
                offset,
            }
        })?;
        report.torn_bytes += decoded.torn_bytes as u64;
        for (_, end, payload) in decoded.frames {
            let record = WalRecord::decode(payload).map_err(|msg| RecoverError::Record {
                stream: stream.clone(),
                msg,
            })?;
            staged.push(Staged {
                stream: si,
                end_offset: end,
                record,
            });
        }
    }
    staged.sort_by_key(|s| s.record.seq);

    // The longest gap-free run after the snapshot boundary.
    let mut run = Vec::new();
    let mut next_seq = snap_seq + 1;
    for s in &staged {
        if s.record.seq <= snap_seq {
            continue; // Folded into the snapshot already.
        }
        if s.record.seq != next_seq {
            break; // Gap (or duplicate): nothing later is trustworthy.
        }
        next_seq += 1;
        run.push(s);
    }

    // 3. Replay, buffering bulk loads until their end record.
    let cat = db.catalog().clone();
    let mut pending: Option<PendingBulk> = None;
    let mut applied_through = snap_seq;
    for s in &run {
        let seq = s.record.seq;
        if let Some(bulk) = &mut pending {
            match &s.record.body {
                RecordBody::InternStr { id, text } => {
                    check_intern_str(&mut side, *id, text)?;
                    bulk.interns.push(Intern::Str(text.clone()));
                }
                RecordBody::InternWide { id, value } => {
                    check_intern_wide(&mut side, *id, *value)?;
                    bulk.interns.push(Intern::Wide(*value));
                }
                RecordBody::BulkRow { rel, cells } if *rel == bulk.rel => {
                    bulk.rows.push(decode_cells(&side, cells, seq)?);
                }
                RecordBody::BulkChunk { rel, rows, cells } if *rel == bulk.rel => {
                    let n = *rows as usize;
                    if n == 0 || cells.len() % n != 0 {
                        return Err(RecoverError::Replay(format!(
                            "bulk chunk at seq {seq} carries {} cells for {n} rows",
                            cells.len()
                        )));
                    }
                    let arity = cells.len() / n;
                    let vals = decode_cells(&side, cells, seq)?;
                    bulk.rows.extend(vals.chunks(arity).map(<[Value]>::to_vec));
                }
                RecordBody::BulkEnd { rel } if *rel == bulk.rel => {
                    let bulk = pending.take().unwrap();
                    let rel = rel_id(&db, bulk.rel, seq)?;
                    // Fold the load's interns in first, in logged (id)
                    // order: the re-pushed rows then reuse the original
                    // symbol ids even though the bulk-ingest fast path
                    // interned them column-at-a-time.
                    for intern in &bulk.interns {
                        match intern {
                            Intern::Str(text) => db.replay_intern_str(text),
                            Intern::Wide(value) => db.replay_intern_wide(*value),
                        }
                    }
                    let mut loader = db.loader(rel);
                    for row in &bulk.rows {
                        loader.push(row);
                    }
                    drop(loader);
                    check_commit(&db, bulk.commit, seq)?;
                    observer.applied(&db, ReplayEvent::BulkLoaded { rel });
                }
                other => {
                    return Err(RecoverError::Replay(format!(
                        "record {other:?} at seq {seq} inside open bulk load of rel {}",
                        bulk.rel
                    )))
                }
            }
            applied_through = seq;
            continue;
        }
        match &s.record.body {
            RecordBody::InternStr { id, text } => {
                check_intern_str(&mut side, *id, text)?;
                db.replay_intern_str(text);
            }
            RecordBody::InternWide { id, value } => {
                check_intern_wide(&mut side, *id, *value)?;
                db.replay_intern_wide(*value);
            }
            RecordBody::Insert { commit, rel, cells }
            | RecordBody::InsertMaintained { commit, rel, cells } => {
                let maintained = matches!(s.record.body, RecordBody::InsertMaintained { .. });
                let rel = rel_id(&db, *rel, seq)?;
                let row = decode_cells(&side, cells, seq)?;
                let name = cat.relation(rel).name();
                let result = if maintained {
                    db.insert_maintained(name, &row).map(|_| ())
                } else {
                    db.insert(name, &row)
                };
                result.map_err(|e| RecoverError::Replay(format!("insert at seq {seq}: {e}")))?;
                check_commit(&db, *commit, seq)?;
                observer.applied(
                    &db,
                    ReplayEvent::Inserted {
                        rel,
                        row,
                        maintained,
                    },
                );
            }
            RecordBody::Delete { commit, rel, cells }
            | RecordBody::DeleteMaintained { commit, rel, cells } => {
                let maintained = matches!(s.record.body, RecordBody::DeleteMaintained { .. });
                let rel = rel_id(&db, *rel, seq)?;
                let row = decode_cells(&side, cells, seq)?;
                let name = cat.relation(rel).name();
                let hit = if maintained {
                    db.delete_maintained(name, &row)
                } else {
                    db.delete(name, &row)
                }
                .map_err(|e| RecoverError::Replay(format!("delete at seq {seq}: {e}")))?;
                if !hit {
                    return Err(RecoverError::Replay(format!(
                        "logged delete at seq {seq} found no row on replay"
                    )));
                }
                check_commit(&db, *commit, seq)?;
                observer.applied(
                    &db,
                    ReplayEvent::Deleted {
                        rel,
                        row,
                        maintained,
                    },
                );
            }
            RecordBody::BulkBegin { commit, rel } => {
                rel_id(&db, *rel, seq)?;
                pending = Some(PendingBulk {
                    rel: *rel,
                    commit: *commit,
                    begin_seq: seq,
                    rows: Vec::new(),
                    interns: Vec::new(),
                });
            }
            RecordBody::BulkRow { .. }
            | RecordBody::BulkChunk { .. }
            | RecordBody::BulkEnd { .. } => {
                return Err(RecoverError::Replay(format!(
                    "bulk record at seq {seq} outside any bulk load"
                )));
            }
            RecordBody::EnsureIndex { commit, rel, x, y } => {
                let rel = rel_id(&db, *rel, seq)?;
                let x: Vec<usize> = x.iter().map(|&c| c as usize).collect();
                let y: Vec<usize> = y.iter().map(|&c| c as usize).collect();
                db.ensure_index_cols(rel, &x, &y);
                check_commit(&db, *commit, seq)?;
                observer.applied(&db, ReplayEvent::IndexBuilt { rel });
            }
        }
        applied_through = seq;
    }
    // A bulk load still open at the end of the run never logged its end
    // record: it is torn, and everything from its begin record on is
    // discarded (the buffered rows were never applied).
    if let Some(bulk) = pending {
        applied_through = bulk.begin_seq - 1;
    }

    report.last_seq = applied_through;
    report.replayed = applied_through - snap_seq;
    report.discarded = staged
        .iter()
        .filter(|s| s.record.seq > applied_through)
        .count() as u64;

    // 4. Truncate each stream behind the last kept record.
    for (si, stream) in streams.iter().enumerate() {
        let keep = staged
            .iter()
            .filter(|s| s.stream == si && s.record.seq <= applied_through)
            .map(|s| s.end_offset)
            .max()
            .unwrap_or(0);
        if keep < stream_lens[si] {
            storage.truncate(stream, keep as u64)?;
            report.truncated_streams += 1;
        }
    }

    Ok((db, report))
}

/// Applies an intern record to the side table, checking the id matches the
/// replay contract (dense sequential assignment). The caller is
/// responsible for mirroring the intern into the replaying database —
/// immediately for committed records, or deferred through
/// [`PendingBulk::interns`] inside an open bulk load (whose records may
/// yet be discarded as torn).
fn check_intern_str(side: &mut SymbolTable, id: u32, text: &str) -> Result<(), RecoverError> {
    let got = side.intern(text);
    if got.0 != id {
        return Err(RecoverError::Replay(format!(
            "intern of {text:?} replayed to id {} but was logged as {id}",
            got.0
        )));
    }
    Ok(())
}

fn check_intern_wide(side: &mut SymbolTable, id: u32, value: i64) -> Result<(), RecoverError> {
    side.encode(&Value::Int(value));
    if side.wide_ints().get(id as usize) != Some(&value) {
        return Err(RecoverError::Replay(format!(
            "wide int {value} not at logged pool index {id} after replay"
        )));
    }
    Ok(())
}

/// Decodes a record's raw cell words against the side symbol table,
/// rejecting words the table cannot account for.
fn decode_cells(side: &SymbolTable, cells: &[u64], seq: u64) -> Result<Vec<Value>, RecoverError> {
    cells
        .iter()
        .map(|&raw| {
            let cell = Cell::from_raw(raw).ok_or_else(|| {
                RecoverError::Replay(format!("invalid cell word {raw:#x} at seq {seq}"))
            })?;
            let known = match cell.kind() {
                CellKind::Null | CellKind::SmallInt(_) => true,
                CellKind::Sym(sym) => (sym.0 as usize) < side.len(),
                CellKind::WideInt(ix) => (ix as usize) < side.num_wide_ints(),
            };
            if !known {
                return Err(RecoverError::Replay(format!(
                    "cell word {raw:#x} at seq {seq} references an id never interned"
                )));
            }
            Ok(side.decode(cell))
        })
        .collect()
}

fn rel_id(db: &Database, rel: u32, seq: u64) -> Result<RelId, RecoverError> {
    if (rel as usize) < db.num_relations() {
        Ok(RelId(rel as usize))
    } else {
        Err(RecoverError::Replay(format!(
            "record at seq {seq} names relation {rel}, catalog has {}",
            db.num_relations()
        )))
    }
}

fn check_commit(db: &Database, commit: u64, seq: u64) -> Result<(), RecoverError> {
    if db.epoch() == commit {
        Ok(())
    } else {
        Err(RecoverError::Replay(format!(
            "record at seq {seq} was stamped commit {commit}, replay arrived at {}",
            db.epoch()
        )))
    }
}
