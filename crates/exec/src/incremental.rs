//! Incremental bounded maintenance — the paper's conclusion item (3a):
//! *"when a query is not effectively bounded, it may be effectively bounded
//! incrementally"* — and, for queries that already are, keeping `Q(D)` up
//! to date under insertions with **bounded work per insertion**.
//!
//! The construction rides on the planner: when a tuple `t` lands in the
//! relation of atom `S_i`, every *new* answer uses `t` at `S_i`, so the
//! delta is the original query with `S_i`'s parameter columns pinned to
//! `t`'s values — a query with strictly more constants, hence effectively
//! bounded whenever `Q` is (and often with a far smaller `Σ M_i`). The new
//! answer is `Q(D+t) = Q(D) ∪ Δ` under set semantics.
//!
//! Scope: insert-only (deletions need support counting — classic IVM
//! territory, out of scope as in the paper's preliminary treatment), and
//! the caller must insert into the [`Database`] and rebuild indices before
//! notifying, since plans only read through indices.

use crate::eval_dq::eval_dq;
use crate::results::ResultSet;
use bcq_core::access::AccessSchema;
use bcq_core::ebcheck::xq_cols;
use bcq_core::error::{CoreError, Result};
use bcq_core::prelude::{QAttr, RelId, SpcQuery, Value};
use bcq_core::qplan::qplan;
use bcq_core::sigma::Sigma;
use bcq_storage::Database;

/// Work done by one delta application.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaStats {
    /// Tuples fetched across the per-atom delta plans.
    pub tuples_fetched: u64,
    /// Answers added to the maintained result.
    pub added_rows: usize,
    /// Delta plans executed (one per atom over the inserted relation).
    pub plans_run: usize,
}

/// A continuously maintained bounded query answer.
#[derive(Debug, Clone)]
pub struct IncrementalAnswer {
    query: SpcQuery,
    access: AccessSchema,
    result: ResultSet,
}

impl IncrementalAnswer {
    /// Evaluates `q` once (boundedly) and starts maintaining it.
    /// Fails if `q` is not effectively bounded under `a`.
    pub fn initialize(db: &Database, q: &SpcQuery, a: &AccessSchema) -> Result<Self> {
        let plan = qplan(q, a)?;
        let out = eval_dq(db, &plan, a)?;
        Ok(IncrementalAnswer {
            query: q.clone(),
            access: a.clone(),
            result: out.result,
        })
    }

    /// The maintained answer.
    pub fn result(&self) -> &ResultSet {
        &self.result
    }

    /// The maintained query.
    pub fn query(&self) -> &SpcQuery {
        &self.query
    }

    /// Inserts `row` into `db` (maintaining its indices in place via
    /// [`Database::insert_maintained`]) and applies the bounded delta —
    /// the one-call live-update path.
    pub fn insert_and_apply(
        &mut self,
        db: &mut Database,
        rel_name: &str,
        row: &[Value],
    ) -> Result<DeltaStats> {
        let rel = self.query.catalog().require_rel(rel_name)?;
        db.insert_maintained(rel_name, row)?;
        self.on_insert(db, rel, row)
    }

    /// Applies an insertion: `row` was added to relation `rel` of `db`
    /// (indices already up to date — use [`Database::insert_maintained`]
    /// or rebuild). Updates the answer with bounded work.
    pub fn on_insert(&mut self, db: &Database, rel: RelId, row: &[Value]) -> Result<DeltaStats> {
        if row.len() != self.query.catalog().relation(rel).arity() {
            return Err(CoreError::Invalid("arity mismatch in on_insert".into()));
        }
        let sigma = Sigma::build(&self.query);
        let mut stats = DeltaStats::default();
        let mut new_rows: Vec<Box<[Value]>> = self.result.rows().to_vec();
        for atom in 0..self.query.num_atoms() {
            if self.query.relation_of(atom) != rel {
                continue;
            }
            // Pin the atom's parameter columns to the inserted tuple.
            let consts: Vec<(QAttr, Value)> = xq_cols(&self.query, &sigma, atom)
                .into_iter()
                .map(|col| (QAttr::new(atom, col), row[col].clone()))
                .collect();
            let delta_q = self.query.with_constants(&consts);
            // More constants than Q ⇒ still effectively bounded; the plan
            // is typically much cheaper than Q's.
            let plan = qplan(&delta_q, &self.access)?;
            let out = eval_dq(db, &plan, &self.access)?;
            stats.tuples_fetched += out.dq_tuples();
            stats.plans_run += 1;
            for r in out.result.rows() {
                new_rows.push(r.clone());
            }
        }
        let before = self.result.len();
        self.result = ResultSet::from_rows(new_rows);
        stats.added_rows = self.result.len() - before;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcq_core::prelude::*;
    use std::sync::Arc;

    fn setup() -> (Database, AccessSchema, SpcQuery) {
        let catalog = Catalog::from_names(&[
            ("in_album", &["photo_id", "album_id"]),
            ("friends", &["user_id", "friend_id"]),
            ("tagging", &["photo_id", "tagger_id", "taggee_id"]),
        ])
        .unwrap();
        let mut a = AccessSchema::new(Arc::clone(&catalog));
        a.add("in_album", &["album_id"], &["photo_id"], 1000)
            .unwrap();
        a.add("friends", &["user_id"], &["friend_id"], 5000)
            .unwrap();
        a.add("tagging", &["photo_id", "taggee_id"], &["tagger_id"], 1)
            .unwrap();
        let mut db = Database::new(Arc::clone(&catalog));
        for (p, al) in [("p1", "a0"), ("p2", "a0")] {
            db.insert("in_album", &[Value::str(p), Value::str(al)])
                .unwrap();
        }
        db.insert("friends", &[Value::str("u0"), Value::str("u1")])
            .unwrap();
        db.insert(
            "tagging",
            &[Value::str("p1"), Value::str("u1"), Value::str("u0")],
        )
        .unwrap();
        db.build_indexes(&a);
        let q = SpcQuery::builder(catalog, "Q0")
            .atom("in_album", "ia")
            .atom("friends", "f")
            .atom("tagging", "t")
            .eq_const(("ia", "album_id"), "a0")
            .eq_const(("f", "user_id"), "u0")
            .eq(("ia", "photo_id"), ("t", "photo_id"))
            .eq(("t", "tagger_id"), ("f", "friend_id"))
            .eq_const(("t", "taggee_id"), "u0")
            .project(("ia", "photo_id"))
            .build()
            .unwrap();
        (db, a, q)
    }

    fn full_reference(db: &Database, q: &SpcQuery, a: &AccessSchema) -> ResultSet {
        let plan = qplan(q, a).unwrap();
        eval_dq(db, &plan, a).unwrap().result
    }

    #[test]
    fn insertions_are_reflected_incrementally() {
        let (mut db, a, q) = setup();
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.result().len(), 1); // p1

        // A new tagging row makes p2 an answer — one call, indices
        // maintained in place (no rebuild).
        let row = [Value::str("p2"), Value::str("u1"), Value::str("u0")];
        let indexes_before = db.num_indexes();
        let stats = inc.insert_and_apply(&mut db, "tagging", &row).unwrap();
        assert_eq!(db.num_indexes(), indexes_before, "no index invalidation");
        assert_eq!(stats.plans_run, 1);
        assert_eq!(stats.added_rows, 1);
        assert!(inc.result().contains(&[Value::str("p2")]));
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
    }

    #[test]
    fn irrelevant_insertions_add_nothing() {
        let (mut db, a, q) = setup();
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        // A friendship of another user cannot create answers.
        let row = [Value::str("u9"), Value::str("u3")];
        db.insert("friends", &row).unwrap();
        db.build_indexes(&a);
        let stats = inc
            .on_insert(&db, db.catalog().rel_id("friends").unwrap(), &row)
            .unwrap();
        assert_eq!(stats.added_rows, 0);
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
        // The delta work is tiny: keyed on the new tuple's values.
        assert!(stats.tuples_fetched <= 8, "{stats:?}");
    }

    #[test]
    fn friend_insertion_activates_existing_tag() {
        let (mut db, a, q) = setup();
        // Tag by u2 exists but u2 is not yet a friend.
        let tag = [Value::str("p2"), Value::str("u2"), Value::str("u0")];
        db.insert("tagging", &tag).unwrap();
        db.build_indexes(&a);
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.result().len(), 1);

        // u2 becomes a friend of u0: p2 should appear.
        let row = [Value::str("u0"), Value::str("u2")];
        db.insert("friends", &row).unwrap();
        db.build_indexes(&a);
        inc.on_insert(&db, db.catalog().rel_id("friends").unwrap(), &row)
            .unwrap();
        assert!(inc.result().contains(&[Value::str("p2")]));
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
    }

    #[test]
    fn self_join_queries_apply_deltas_per_atom() {
        let cat = Catalog::from_names(&[("e", &["src", "dst"])]).unwrap();
        let mut a = AccessSchema::new(cat.clone());
        a.add("e", &["src"], &["dst"], 16).unwrap();
        a.add("e", &["dst"], &["src"], 16).unwrap();
        // Two-hop neighbours of node 1.
        let q = SpcQuery::builder(cat.clone(), "two_hop")
            .atom("e", "e1")
            .atom("e", "e2")
            .eq_const(("e1", "src"), 1)
            .eq(("e2", "src"), ("e1", "dst"))
            .project(("e2", "dst"))
            .build()
            .unwrap();
        let mut db = Database::new(cat.clone());
        db.insert("e", &[Value::int(1), Value::int(2)]).unwrap();
        db.build_indexes(&a);
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert_eq!(inc.result().len(), 0);

        // (2, 3) completes a path through atom e2 — and as atom e1 it is
        // irrelevant. Both delta plans run.
        let row = [Value::int(2), Value::int(3)];
        db.insert("e", &row).unwrap();
        db.build_indexes(&a);
        let stats = inc.on_insert(&db, RelId(0), &row).unwrap();
        assert_eq!(stats.plans_run, 2);
        assert!(inc.result().contains(&[Value::int(3)]));
        assert_eq!(inc.result(), &full_reference(&db, &q, &a));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (db, a, q) = setup();
        let mut inc = IncrementalAnswer::initialize(&db, &q, &a).unwrap();
        assert!(inc
            .on_insert(&db, RelId(0), &[Value::str("only-one")])
            .is_err());
    }
}
