//! Micro-bench for the index-probe + join hot path.
//!
//! This is the data-plane cost the paper's whole argument rests on: an
//! effectively bounded plan touches `|D_Q|` tuples regardless of `|D|`, so
//! per-tuple fetch/hash/join constants dominate. Three probes:
//!
//! * `probe/str_keys` — witness lookups keyed by string values (the worst
//!   case for key hashing).
//! * `probe/int_keys` — witness lookups keyed by integers.
//! * `join/eval_dq` — a full three-atom bounded evaluation (fetch → filter
//!   → hash-join → project) on a social-style database.
//!
//! Run `cargo bench --bench probe_join` before and after data-plane changes
//! and compare the medians.

use bcq_core::prelude::*;
use bcq_core::row::Cell;
use bcq_exec::eval_dq;
use bcq_storage::Database;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

const USERS: i64 = 20_000;
const FRIENDS_PER_USER: i64 = 8;

fn social_catalog() -> Arc<Catalog> {
    Catalog::from_names(&[
        ("in_album", &["photo_id", "album_id"]),
        ("friends", &["user_id", "friend_id"]),
        ("tagging", &["photo_id", "tagger_id", "taggee_id"]),
    ])
    .unwrap()
}

fn social_access(cat: &Arc<Catalog>) -> AccessSchema {
    let mut a = AccessSchema::new(Arc::clone(cat));
    a.add("in_album", &["album_id"], &["photo_id"], 64).unwrap();
    a.add("friends", &["user_id"], &["friend_id"], 64).unwrap();
    a.add("tagging", &["photo_id", "taggee_id"], &["tagger_id"], 8)
        .unwrap();
    a
}

/// A social database with string ids (photo "p123", user "u456"), sized so
/// probes dominate: `USERS * FRIENDS_PER_USER` friends rows plus albums and
/// taggings that keep every query key hot.
fn social_db(cat: &Arc<Catalog>, a: &AccessSchema) -> Database {
    let mut db = Database::new(Arc::clone(cat));
    for u in 0..USERS {
        for k in 0..FRIENDS_PER_USER {
            let f = (u * 31 + k * 7 + 1) % USERS;
            db.insert(
                "friends",
                &[Value::str(format!("u{u}")), Value::str(format!("f{f}"))],
            )
            .unwrap();
        }
    }
    for p in 0..USERS / 2 {
        db.insert(
            "in_album",
            &[
                Value::str(format!("p{p}")),
                Value::str(format!("a{}", p % (USERS / 20))),
            ],
        )
        .unwrap();
        db.insert(
            "tagging",
            &[
                Value::str(format!("p{p}")),
                Value::str(format!("f{}", (p * 31 + 1) % USERS)),
                Value::str(format!("u{}", p % USERS)),
            ],
        )
        .unwrap();
    }
    db.build_indexes(a);
    db
}

fn bench_probe(c: &mut Criterion) {
    let cat = social_catalog();
    let a = social_access(&cat);
    let db = social_db(&cat, &a);
    let friends_idx = db
        .index_for(a.constraint(ConstraintId(1)))
        .expect("friends index built");

    let mut group = c.benchmark_group("probe");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Probe keys arriving as values (the query-constant boundary): one
    // symbol-table lookup per key, then a fixed-width probe.
    let str_keys: Vec<Value> = (0..USERS).map(|u| Value::str(format!("u{u}"))).collect();
    group.bench_function("str_keys", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in &str_keys {
                if let Some(cell) = db.symbols().try_encode(k) {
                    hits += friends_idx.witnesses(std::slice::from_ref(&cell)).len();
                }
            }
            black_box(hits)
        })
    });

    // Probe keys already interned (the steady state inside a plan: keys
    // come from previously fetched rows): pure u64 hashing.
    let interned_keys: Vec<Cell> = str_keys
        .iter()
        .map(|k| db.symbols().try_encode(k).expect("loaded"))
        .collect();
    group.bench_function("str_keys_interned", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for cell in &interned_keys {
                hits += friends_idx.witnesses(std::slice::from_ref(cell)).len();
            }
            black_box(hits)
        })
    });

    // Integer-keyed variant of the same index shape.
    let int_cat = Catalog::from_names(&[("friends", &["user_id", "friend_id"])]).unwrap();
    let mut int_a = AccessSchema::new(Arc::clone(&int_cat));
    int_a
        .add("friends", &["user_id"], &["friend_id"], 64)
        .unwrap();
    let mut int_db = Database::new(Arc::clone(&int_cat));
    for u in 0..USERS {
        for k in 0..FRIENDS_PER_USER {
            let f = (u * 31 + k * 7 + 1) % USERS;
            int_db
                .insert("friends", &[Value::int(u), Value::int(f)])
                .unwrap();
        }
    }
    int_db.build_indexes(&int_a);
    let int_idx = int_db
        .index_for(int_a.constraint(ConstraintId(0)))
        .expect("int friends index built");
    let int_keys: Vec<Value> = (0..USERS).map(Value::int).collect();
    group.bench_function("int_keys", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in &int_keys {
                if let Some(cell) = int_db.symbols().try_encode(k) {
                    hits += int_idx.witnesses(std::slice::from_ref(&cell)).len();
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let cat = social_catalog();
    let a = social_access(&cat);
    let db = social_db(&cat, &a);

    // One bounded three-atom query per hot album/user pair; evaluating the
    // batch exercises fetch, filter, hash-join, and project end to end.
    let plans: Vec<_> = (0..32)
        .map(|i| {
            let q = SpcQuery::builder(Arc::clone(&cat), format!("q{i}"))
                .atom("in_album", "ia")
                .atom("friends", "f")
                .atom("tagging", "t")
                .eq_const(("ia", "album_id"), format!("a{}", i * 7 + 1))
                .eq_const(("f", "user_id"), format!("u{}", i * 13 + 5))
                .eq(("ia", "photo_id"), ("t", "photo_id"))
                .eq(("t", "tagger_id"), ("f", "friend_id"))
                .eq_const(("t", "taggee_id"), format!("u{}", i * 13 + 5))
                .project(("ia", "photo_id"))
                .build()
                .unwrap();
            bcq_core::qplan::qplan(&q, &a).unwrap()
        })
        .collect();

    let mut group = c.benchmark_group("join");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("eval_dq", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for plan in &plans {
                rows += eval_dq(&db, plan, &a).unwrap().result.len();
            }
            black_box(rows)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_probe, bench_join);
criterion_main!(benches);
