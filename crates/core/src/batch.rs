//! Column-major candidate batches: the vectorized data-plane layout.
//!
//! A [`ColumnBatch`] stores the same candidate rows as a row-major batch,
//! transposed: one contiguous `Vec<Cell>` per column plus a **selection
//! vector** of live row indices. Operators never materialize intermediate
//! rows — a filter is a predicate sweep over a single column that shrinks
//! the selection vector in place, a join key extraction is a gather from a
//! column through the selection vector into a packed key column, and only
//! projection touches anything row-shaped again.
//!
//! Cells are single `u64` words ([`Cell`]), so every sweep is a tight loop
//! over machine words the compiler can unroll and auto-vectorize. The
//! boundedness guarantee is what makes this layout pay off: bounded plans
//! know their per-atom fetch bounds statically, so batches are small and
//! column-at-a-time passes stay resident in cache.
//!
//! The row-at-a-time interpreter over [`crate::row::RowBuf`] batches
//! survives unchanged as the differential oracle; `bcq-exec`'s equivalence
//! tests drive both layouts over identical inputs and assert identical
//! answers and meter charges.

use crate::row::{Cell, Row, RowBuf};

/// Candidate rows for one atom in column-major layout with a selection
/// vector. The columnar counterpart of `bcq-exec`'s row-major batch.
///
/// Invariants: every column holds exactly [`ColumnBatch::total_rows`]
/// cells, and the selection vector holds strictly increasing indices below
/// `total_rows` (operators only ever *remove* entries, so construction
/// order is preserved).
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    atom: usize,
    cols: Vec<usize>,
    columns: Vec<Vec<Cell>>,
    total: usize,
    sel: Vec<u32>,
}

impl ColumnBatch {
    /// An empty batch for `atom` carrying the relation columns `cols`.
    pub fn new(atom: usize, cols: Vec<usize>) -> Self {
        let width = cols.len();
        ColumnBatch {
            atom,
            cols,
            columns: vec![Vec::new(); width],
            total: 0,
            sel: Vec::new(),
        }
    }

    /// Transposes row-major rows (already projected onto `cols`) into a
    /// columnar batch with every row selected.
    pub fn from_rows<'a, I>(atom: usize, cols: Vec<usize>, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a Row>,
    {
        let mut batch = ColumnBatch::new(atom, cols);
        for row in rows {
            batch.push_row(row);
        }
        batch
    }

    /// Appends one (selected) row; its width must match the column layout.
    #[inline]
    pub fn push_row(&mut self, row: &Row) {
        debug_assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        for (col, &cell) in self.columns.iter_mut().zip(row) {
            col.push(cell);
        }
        self.sel.push(self.total as u32);
        self.total += 1;
    }

    /// Resets the batch in place for reuse: drops all rows and the
    /// selection, re-targets `atom` and the column layout, and keeps every
    /// buffer's capacity. The serving layer recycles batches across
    /// requests through this, so a steady-state request allocates nothing
    /// for its fetch output.
    pub fn reset(&mut self, atom: usize, cols: &[usize]) {
        self.atom = atom;
        self.cols.clear();
        self.cols.extend_from_slice(cols);
        self.columns.truncate(cols.len());
        for col in &mut self.columns {
            col.clear();
        }
        self.columns.resize_with(cols.len(), Vec::new);
        self.total = 0;
        self.sel.clear();
    }

    /// Reserves space for `additional` more rows in every column.
    pub fn reserve_rows(&mut self, additional: usize) {
        for col in &mut self.columns {
            col.reserve(additional);
        }
        self.sel.reserve(additional);
    }

    /// The atom these rows instantiate.
    #[inline]
    pub fn atom(&self) -> usize {
        self.atom
    }

    /// Relation columns present, aligned with the column vectors.
    #[inline]
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// All cells of column `i` (selected and filtered alike) — index with
    /// selection-vector entries.
    #[inline]
    pub fn column(&self, i: usize) -> &[Cell] {
        &self.columns[i]
    }

    /// Rows ever appended (the length of every column).
    #[inline]
    pub fn total_rows(&self) -> usize {
        self.total
    }

    /// Live (selected) rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.sel.len()
    }

    /// `true` if no row is selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }

    /// The selection vector: indices of live rows, ascending.
    #[inline]
    pub fn sel(&self) -> &[u32] {
        &self.sel
    }

    /// Replaces the selection vector with a sweep's survivors. Must be a
    /// subsequence of the current selection (operators only remove rows).
    pub fn set_sel(&mut self, sel: Vec<u32>) {
        debug_assert!(
            sel.windows(2).all(|w| w[0] < w[1]),
            "selection not ascending"
        );
        debug_assert!(
            sel.last().is_none_or(|&r| (r as usize) < self.total),
            "selection out of bounds"
        );
        self.sel = sel;
    }

    /// Bulk-appends `n` rows column-at-a-time: `fill(i, out)` must append
    /// exactly `n` cells of output column `i` onto `out` (e.g. a gather
    /// from storage). All appended rows are selected.
    pub fn extend_columns<F: FnMut(usize, &mut Vec<Cell>)>(&mut self, n: usize, mut fill: F) {
        for (i, col) in self.columns.iter_mut().enumerate() {
            fill(i, col);
            debug_assert_eq!(
                col.len(),
                self.total + n,
                "fill wrote a different row count"
            );
        }
        self.sel
            .extend((self.total..self.total + n).map(|r| r as u32));
        self.total += n;
    }

    /// Deselects every row (a filter that can match nothing).
    #[inline]
    pub fn clear_sel(&mut self) {
        self.sel.clear();
    }

    /// Keeps only the selected rows `f` accepts (called with the row
    /// index). The generic sweep behind operator-specific filters.
    #[inline]
    pub fn retain<F: FnMut(usize) -> bool>(&mut self, mut f: F) {
        self.sel.retain(|&r| f(r as usize));
    }

    /// Predicate sweep: keeps selected rows whose cell in column `i`
    /// equals `cell`.
    #[inline]
    pub fn retain_eq_const(&mut self, i: usize, cell: Cell) {
        let col = &self.columns[i];
        self.sel.retain(|&r| col[r as usize] == cell);
    }

    /// Equality-pair sweep: keeps selected rows whose cells in columns `i`
    /// and `j` agree. `i == j` (a self-equality predicate) is trivially
    /// true and sweeps nothing.
    #[inline]
    pub fn retain_cols_eq(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        let ci = &self.columns[i];
        let cj = &self.columns[j];
        self.sel.retain(|&r| ci[r as usize] == cj[r as usize]);
    }

    /// Gathers column `i` through the selection vector, appending one cell
    /// per live row onto `out` — join key packing.
    #[inline]
    pub fn gather(&self, i: usize, out: &mut Vec<Cell>) {
        let col = &self.columns[i];
        out.extend(self.sel.iter().map(|&r| col[r as usize]));
    }

    /// The cell at (`row`, column `i`) — `row` is a row index, typically a
    /// selection-vector entry.
    #[inline]
    pub fn cell(&self, row: usize, i: usize) -> Cell {
        self.columns[i][row]
    }

    /// Materializes the live rows back into row-major form, in selection
    /// order (tests and oracle comparisons; the hot path never calls this).
    pub fn to_rows(&self) -> Vec<RowBuf> {
        self.sel
            .iter()
            .map(|&r| {
                self.columns
                    .iter()
                    .map(|col| col[r as usize])
                    .collect::<RowBuf>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(v: i64) -> Cell {
        Cell::from_small_int(v).unwrap()
    }

    fn batch(rows: &[&[i64]]) -> ColumnBatch {
        let width = rows.first().map_or(0, |r| r.len());
        let mut b = ColumnBatch::new(0, (0..width).collect());
        for r in rows {
            let cells: Vec<Cell> = r.iter().map(|&v| cell(v)).collect();
            b.push_row(&cells);
        }
        b
    }

    #[test]
    fn transpose_roundtrip() {
        let b = batch(&[&[1, 10], &[2, 20], &[3, 30]]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.total_rows(), 3);
        assert_eq!(b.width(), 2);
        assert_eq!(b.column(0), &[cell(1), cell(2), cell(3)]);
        assert_eq!(b.column(1), &[cell(10), cell(20), cell(30)]);
        let rows = b.to_rows();
        assert_eq!(rows[1].as_slice(), &[cell(2), cell(20)]);
    }

    #[test]
    fn empty_batch_has_empty_selection() {
        let b = ColumnBatch::new(3, vec![0, 1]);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.total_rows(), 0);
        assert_eq!(b.sel(), &[] as &[u32]);
        assert!(b.to_rows().is_empty());
        assert_eq!(b.atom(), 3);
    }

    #[test]
    fn sweeps_shrink_selection_not_columns() {
        let mut b = batch(&[&[1, 1], &[1, 2], &[2, 2], &[1, 1]]);
        b.retain_eq_const(0, cell(1));
        assert_eq!(b.sel(), &[0, 1, 3]);
        b.retain_cols_eq(0, 1);
        assert_eq!(b.sel(), &[0, 3]);
        // Columns keep every row: only the selection shrinks.
        assert_eq!(b.total_rows(), 4);
        assert_eq!(b.column(0).len(), 4);
        assert_eq!(b.to_rows().len(), 2);
    }

    #[test]
    fn all_filtered_batch_is_empty_but_retains_data() {
        let mut b = batch(&[&[1, 10], &[2, 20]]);
        b.retain_eq_const(0, cell(99));
        assert!(b.is_empty());
        assert_eq!(b.total_rows(), 2);
        b.clear_sel();
        assert!(b.is_empty());
    }

    #[test]
    fn gather_follows_selection() {
        let mut b = batch(&[&[1, 10], &[2, 20], &[3, 30]]);
        b.retain(|r| r != 1);
        let mut keys = Vec::new();
        b.gather(1, &mut keys);
        assert_eq!(keys, vec![cell(10), cell(30)]);
    }

    #[test]
    fn reset_retargets_and_empties_the_batch() {
        let mut b = batch(&[&[1, 10], &[2, 20]]);
        b.retain_eq_const(0, cell(1));
        b.reset(7, &[4, 5, 6]);
        assert_eq!(b.atom(), 7);
        assert_eq!(b.cols(), &[4, 5, 6]);
        assert_eq!(b.width(), 3);
        assert!(b.is_empty());
        assert_eq!(b.total_rows(), 0);
        b.push_row(&[cell(1), cell(2), cell(3)]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.to_rows()[0].as_slice(), &[cell(1), cell(2), cell(3)]);
        // Shrinking the layout works too (and clears prior contents).
        b.reset(0, &[9]);
        assert_eq!(b.width(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn zero_width_batch_counts_rows() {
        // Existence probes produce empty rows: no columns, but the batch
        // still carries row multiplicity through the selection vector.
        let mut b = ColumnBatch::new(0, Vec::new());
        b.push_row(&[]);
        assert_eq!(b.width(), 0);
        assert_eq!(b.len(), 1);
        assert_eq!(b.to_rows(), vec![RowBuf::new()]);
    }
}
