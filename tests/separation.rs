//! Proposition 2: `SPC_eb ⊊ SPC_b` — a query that is bounded but not
//! effectively bounded under the same access schema.

use bounded_cq::core::dominating::{find_dp, DominatingConfig};
use bounded_cq::prelude::*;

/// The witness: `Q(b) = π_b σ_{a=1}(r)` under `A = {∅ → (b, 5)}`.
///
/// *Bounded*: the domain of `b` has at most 5 values, so a 5-tuple witness
/// set answers the query (each distinct `b`-value needs one witness tuple
/// with `a = 1`, if any).
///
/// *Not effectively bounded*: no index keyed within `{a, b}` exists, so
/// those witnesses cannot be located without scanning `D`.
#[test]
fn proposition_2_witness() {
    let cat = Catalog::from_names(&[("r", &["a", "b"])]).unwrap();
    let mut a = AccessSchema::new(cat.clone());
    a.add("r", &[], &["b"], 5).unwrap();

    let q = SpcQuery::builder(cat, "sep")
        .atom("r", "r")
        .eq_const(("r", "a"), 1)
        .project(("r", "b"))
        .build()
        .unwrap();

    assert!(bcheck(&q, &a).bounded, "bounded via the domain constraint");
    assert!(
        !ebcheck(&q, &a).effectively_bounded,
        "but no index can fetch the witnesses"
    );
    assert!(qplan(&q, &a).is_err());
    // And no instantiation fixes it: `a` is covered by no constraint.
    assert!(find_dp(&q, &a, DominatingConfig::default()).is_none());
}

/// Completing the picture: adding the index (as a constraint keyed on `b`)
/// closes the gap.
#[test]
fn proposition_2_gap_closes_with_an_index() {
    let cat = Catalog::from_names(&[("r", &["a", "b"])]).unwrap();
    let mut a = AccessSchema::new(cat.clone());
    a.add("r", &[], &["b"], 5).unwrap();
    // b -> (a, N): an index on b exposing a; with the domain bound this
    // makes {a, b} indexed and reachable.
    a.add("r", &["b"], &["a"], 3).unwrap();

    let q = SpcQuery::builder(cat.clone(), "sep2")
        .atom("r", "r")
        .eq_const(("r", "a"), 1)
        .project(("r", "b"))
        .build()
        .unwrap();
    assert!(ebcheck(&q, &a).effectively_bounded);
    let plan = qplan(&q, &a).unwrap();
    // Fetch the ≤5 b-values, then ≤3 witnesses per b: 5 + 15.
    assert_eq!(plan.cost_bound(), 5 + 15);

    // Execute to confirm the witnesses suffice: note data satisfies both
    // constraints (b has ≤ 5 distinct values; each b has ≤ 3 distinct a).
    let mut db = Database::new(cat);
    for (av, bv) in [(1, 10), (1, 11), (2, 10), (3, 12), (1, 10)] {
        db.insert("r", &[Value::int(av), Value::int(bv)]).unwrap();
    }
    db.build_indexes(&a);
    let out = eval_dq(&db, &plan, &a).unwrap();
    assert_eq!(out.result.len(), 2); // b = 10 and b = 11 have a = 1
    let full = baseline(
        &db,
        &q,
        &a,
        BaselineOptions {
            mode: BaselineMode::FullScan,
            work_budget: None,
        },
    )
    .unwrap();
    assert_eq!(full.result().unwrap(), &out.result);
}
